//! The [`Fleet`]: N per-seed chip replicas behind one router.
//!
//! Each replica pairs a frozen [`CompiledModel`] (one simulated physical
//! chip, compiled from its own variation seed) with its own
//! [`Scheduler`] — bounded queue, micro-batching, deadlines, supervised
//! pumps — all sharing the process-wide worker pool. The fleet routes
//! each request to one replica under the configured
//! [`RoutingPolicy`], masks *draining* replicas out of rotation, and
//! exposes per-replica queue depths both to the least-loaded policy and
//! to the `fleet.replica.*.queue_depth` gauges, from the same
//! [`Scheduler::queue_depth`] source of truth.
//!
//! # Drain-aware healing
//!
//! [`Fleet::heal_replica`] is the scale-out version of the PR-5 healing
//! loop: mark the replica draining (new traffic routes around it), let
//! its queue empty ([`Scheduler::drain`]), replay its canaries through
//! the existing [`HealthMonitor`] — recompiling and hot-swapping on a
//! floor breach — then return it to rotation. In-flight requests finish
//! on the model they were dispatched with ([`Scheduler::swap_primary`]
//! is atomic between batches), so callers never observe a torn model,
//! only a replica that briefly takes less traffic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vortex_nn::pool::WorkerPool;
use vortex_runtime::CompiledModel;
use vortex_serve::{
    HealthConfig, HealthMonitor, ProbeOutcome, Recompile, Scheduler, SchedulerConfig, Ticket,
};

use crate::ensemble::EnsembleTicket;
use crate::routing::{Router, RoutingPolicy};
use crate::{FleetError, Result};

/// Configuration of a [`Fleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// How requests are routed across replicas.
    pub policy: RoutingPolicy,
    /// The scheduler every replica runs (queue capacity, batching,
    /// backoff — see [`SchedulerConfig`]).
    pub scheduler: SchedulerConfig,
}

impl FleetConfig {
    /// A production-shaped fleet configuration under `policy`.
    pub fn new(policy: RoutingPolicy) -> Self {
        Self {
            policy,
            scheduler: SchedulerConfig::new(vortex_nn::executor::Parallelism::Fixed(1)),
        }
    }

    /// This configuration with the given per-replica scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Whether a replica is taking new traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// In rotation.
    Serving,
    /// Masked out of routing while its queue empties (recompile,
    /// maintenance); in-flight requests still complete.
    Draining,
}

struct Replica {
    seed: u64,
    scheduler: Arc<Scheduler>,
    draining: AtomicBool,
    /// Virtual age of the serving chip in seconds (f64 bits) — written
    /// by whoever advances the fleet's lifetime clock
    /// ([`Fleet::set_replica_age`]), reset by a successful heal.
    age_s: AtomicU64,
}

/// N per-seed chip replicas behind one router. See the module docs.
pub struct Fleet {
    replicas: Vec<Replica>,
    router: Router,
}

impl Fleet {
    /// Builds a fleet over `(variation seed, model)` pairs on the
    /// process-wide [`WorkerPool::global`]. The seed is carried for
    /// observability and replica identity — compile the models with
    /// `ModelCompiler::compile_seeded`/`compile_replicas` (or the
    /// `CompileRequest` builder those delegate to, when a replica needs
    /// a non-default weight encoding) so it is the actual fabrication
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] for an empty fleet, for
    /// replicas of disagreeing logical shape, or for an invalid
    /// scheduler configuration.
    pub fn new(models: Vec<(u64, Arc<CompiledModel>)>, config: FleetConfig) -> Result<Self> {
        Self::on_pool(Arc::clone(WorkerPool::global()), models, config)
    }

    /// [`Self::new`] on an explicit pool — tests use this to pin the
    /// whole fleet onto one shared pool of a specific size.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn on_pool(
        pool: Arc<WorkerPool>,
        models: Vec<(u64, Arc<CompiledModel>)>,
        config: FleetConfig,
    ) -> Result<Self> {
        if models.is_empty() {
            return Err(FleetError::InvalidParameter {
                name: "models",
                requirement: "a fleet needs at least one replica",
            });
        }
        let (rows, classes) = (models[0].1.logical_rows(), models[0].1.classes());
        if models
            .iter()
            .any(|(_, m)| m.logical_rows() != rows || m.classes() != classes)
        {
            return Err(FleetError::InvalidParameter {
                name: "models",
                requirement: "every replica must share one logical shape",
            });
        }
        let router = Router::new(config.policy, models.len())?;
        let replicas = models
            .into_iter()
            .map(|(seed, model)| {
                let scheduler = Scheduler::on_pool(
                    Arc::clone(&pool),
                    model,
                    None,
                    config.scheduler.clone(),
                    None,
                )
                .map_err(|source| FleetError::Replica { replica: 0, source })?;
                Ok(Replica {
                    seed,
                    scheduler: Arc::new(scheduler),
                    draining: AtomicBool::new(false),
                    age_s: AtomicU64::new(0.0f64.to_bits()),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        vortex_obs::gauge!("fleet.replicas").set(replicas.len() as f64);
        Ok(Self { replicas, router })
    }

    /// Number of replicas (serving and draining).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet holds no replicas (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The router spreading traffic across this fleet.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Replica `idx`'s scheduler (for health monitors, direct metering).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn scheduler(&self, idx: usize) -> Arc<Scheduler> {
        Arc::clone(&self.replicas[idx].scheduler)
    }

    /// Replica `idx`'s variation seed.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn seed(&self, idx: usize) -> u64 {
        self.replicas[idx].seed
    }

    /// Replica `idx`'s routing status.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn status(&self, idx: usize) -> ReplicaStatus {
        if self.replicas[idx].draining.load(Ordering::Acquire) {
            ReplicaStatus::Draining
        } else {
            ReplicaStatus::Serving
        }
    }

    /// The routable mask the router sees: `true` for every replica not
    /// draining.
    pub fn routable(&self) -> Vec<bool> {
        self.replicas
            .iter()
            .map(|r| !r.draining.load(Ordering::Acquire))
            .collect()
    }

    /// Every replica's current queue depth, in fleet order, published to
    /// the `fleet.replica.<i>.queue_depth` gauges as a side effect. The
    /// least-loaded policy and the dashboards both read these numbers —
    /// one source of truth ([`Scheduler::queue_depth`]).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let depth = r.scheduler.queue_depth();
                vortex_obs::gauge(&format!("fleet.replica.{i}.queue_depth")).set(depth as f64);
                depth
            })
            .collect()
    }

    /// Sets replica `idx`'s virtual age — how long the serving chip has
    /// degraded since it was last programmed, on whatever lifetime clock
    /// the operator runs (`vortex_serve::lifetime::DeviceTimeline`
    /// timelines in the bench harness, wall-clock uptime in a real
    /// deployment). Rolling deployments stagger these ages on purpose:
    /// replicas then drift toward their canary floors at different
    /// times, so heals never gang up.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] for a negative or
    /// non-finite age.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn set_replica_age(&self, idx: usize, age_s: f64) -> Result<()> {
        if !(age_s.is_finite() && age_s >= 0.0) {
            return Err(FleetError::InvalidParameter {
                name: "age_s",
                requirement: "must be finite and non-negative",
            });
        }
        self.replicas[idx]
            .age_s
            .store(age_s.to_bits(), Ordering::Release);
        vortex_obs::gauge(&format!("fleet.replica.{idx}.age_s")).set(age_s);
        Ok(())
    }

    /// Replica `idx`'s virtual age in seconds (0 until aged or after a
    /// successful heal).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn replica_age(&self, idx: usize) -> f64 {
        f64::from_bits(self.replicas[idx].age_s.load(Ordering::Acquire))
    }

    /// Every replica's virtual age, in fleet order.
    pub fn replica_ages(&self) -> Vec<f64> {
        (0..self.replicas.len())
            .map(|i| self.replica_age(i))
            .collect()
    }

    /// Routes and submits one request. Returns the chosen replica's
    /// fleet index alongside the response ticket, so callers can
    /// attribute latency and verify stickiness.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoRoutableReplica`] when every replica is draining;
    /// [`FleetError::Replica`] wrapping the replica's typed rejection
    /// (queue full, deadline, shutdown, bad input length).
    pub fn submit(
        &self,
        key: u64,
        input: Vec<f64>,
        deadline: Option<Instant>,
    ) -> Result<(usize, Ticket)> {
        let routable = self.routable();
        let depths = self.queue_depths();
        let replica = self.router.route(key, &routable, &depths)?;
        vortex_obs::counter!("fleet.routed").incr();
        match self.replicas[replica].scheduler.try_submit(input, deadline) {
            Ok(ticket) => Ok((replica, ticket)),
            Err(source) => {
                vortex_obs::counter!("fleet.rejected").incr();
                Err(FleetError::Replica { replica, source })
            }
        }
    }

    /// [`Self::submit`] + wait — the one-call convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Self::submit`].
    pub fn submit_wait(&self, key: u64, input: Vec<f64>) -> Result<vortex_serve::Prediction> {
        let (replica, ticket) = self.submit(key, input, None)?;
        ticket
            .wait()
            .map_err(|source| FleetError::Replica { replica, source })
    }

    /// Fans one request to the first `k` routable replicas (fleet-index
    /// order, so the slate is deterministic) for a majority-voted read.
    /// `k` is clamped to the routable count; the vote logic lives in
    /// [`EnsembleTicket::wait`].
    ///
    /// # Errors
    ///
    /// [`FleetError::NoRoutableReplica`] when every replica is draining;
    /// [`FleetError::Replica`] when any chosen leg rejects at submit
    /// (ensemble reads are all-or-nothing at admission).
    pub fn ensemble_submit(&self, input: Vec<f64>, k: usize) -> Result<EnsembleTicket> {
        if k == 0 {
            return Err(FleetError::InvalidParameter {
                name: "k",
                requirement: "an ensemble read needs at least one leg",
            });
        }
        let legs: Vec<usize> = self
            .routable()
            .iter()
            .enumerate()
            .filter_map(|(i, &ok)| ok.then_some(i))
            .take(k)
            .collect();
        if legs.is_empty() {
            return Err(FleetError::NoRoutableReplica);
        }
        let mut parts = Vec::with_capacity(legs.len());
        for replica in legs {
            let ticket = self.replicas[replica]
                .scheduler
                .try_submit(input.clone(), None)
                .map_err(|source| FleetError::Replica { replica, source })?;
            parts.push((replica, ticket));
        }
        vortex_obs::counter!("fleet.ensemble.reads").incr();
        Ok(EnsembleTicket { parts })
    }

    /// Takes replica `idx` out of rotation and blocks until its queue is
    /// empty and nothing is in flight. New traffic routes around it from
    /// the moment this is called; call [`Self::undrain`] to return it.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn drain(&self, idx: usize) {
        self.replicas[idx].draining.store(true, Ordering::Release);
        vortex_obs::counter!("fleet.drains").incr();
        self.replicas[idx].scheduler.drain();
    }

    /// Returns a drained replica to rotation.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn undrain(&self, idx: usize) {
        self.replicas[idx].draining.store(false, Ordering::Release);
    }

    /// Atomically replaces replica `idx`'s model without taking it out
    /// of rotation — in-flight batches finish on the model they started
    /// with (see [`Scheduler::swap_primary`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::Replica`] when the replacement's logical shape
    /// disagrees with the serving model's.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn swap_replica(&self, idx: usize, model: Arc<CompiledModel>) -> Result<()> {
        self.replicas[idx]
            .scheduler
            .swap_primary(model)
            .map_err(|source| FleetError::Replica {
                replica: idx,
                source,
            })
    }

    /// The drain-on-breach healing loop for one replica: drain it out of
    /// rotation, replay its canaries through a [`HealthMonitor`]
    /// (recompiling and hot-swapping on a floor breach, exactly the PR-5
    /// loop), then return it to rotation — whatever the probe found. The
    /// rest of the fleet keeps serving throughout, so healing is
    /// invisible to callers.
    ///
    /// # Errors
    ///
    /// Propagates the probe's error (e.g. a canary-free model) as
    /// [`FleetError::Replica`]; the replica is returned to rotation
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn heal_replica(
        &self,
        idx: usize,
        config: HealthConfig,
        recompile: impl Recompile + 'static,
    ) -> Result<ProbeOutcome> {
        self.drain(idx);
        let monitor = HealthMonitor::new(self.scheduler(idx), config, recompile);
        let outcome = monitor.probe();
        self.undrain(idx);
        vortex_obs::counter!("fleet.heals").incr();
        if let Ok(ProbeOutcome::Recovered { .. }) = &outcome {
            // The replica serves a freshly programmed chip: its lifetime
            // clock restarts, un-staggering it from the rest of the
            // fleet.
            self.replicas[idx]
                .age_s
                .store(0.0f64.to_bits(), Ordering::Release);
            vortex_obs::gauge(&format!("fleet.replica.{idx}.age_s")).set(0.0);
        }
        outcome.map_err(|source| FleetError::Replica {
            replica: idx,
            source,
        })
    }

    /// Pauses every replica's pumps (admissions continue) — used with
    /// [`Self::resume_all`] to build exact backlogs for metering.
    pub fn pause_all(&self) {
        for r in &self.replicas {
            r.scheduler.pause();
        }
    }

    /// Releases every paused replica.
    pub fn resume_all(&self) {
        for r in &self.replicas {
            r.scheduler.resume();
        }
    }

    /// Shuts every replica down, draining queues and retiring pumps.
    /// Idempotent; also runs on drop (via each scheduler's drop).
    pub fn shutdown(&self) {
        for r in &self.replicas {
            r.scheduler.shutdown();
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.replicas.len())
            .field("policy", &self.router.policy())
            .field("draining", &self.routable().iter().filter(|r| !**r).count())
            .finish()
    }
}
