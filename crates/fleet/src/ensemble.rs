//! Ensemble reads: fan one request to k independently-varied chips and
//! majority-vote the label.
//!
//! Each replica of a fleet is compiled from a distinct variation seed, so
//! their conductance errors — and hence their per-sample mistakes — are
//! independent draws. A majority vote over k such chips suppresses the
//! uncorrelated part of the error exactly the way the paper's Fig 9 row
//! redundancy does inside one crossbar, but at the fleet level: the
//! `fleet` bench experiment shows the 5-chip vote beating the *best*
//! single chip once sigma is high enough for variation to dominate.
//!
//! Voting is deterministic: the winner is the most frequent label, ties
//! broken toward the numerically smallest label, so the verdict is a
//! pure function of the vote multiset.

use vortex_nn::dataset::Dataset;
use vortex_nn::executor::Parallelism;
use vortex_runtime::{CompiledModel, RuntimeError};
use vortex_serve::Ticket;

use crate::{FleetError, Result};

/// The most frequent label in `votes`; ties break toward the smallest
/// label, so the verdict is a pure function of the vote multiset.
/// Returns `None` for an empty slate.
pub fn majority_vote(votes: &[u8]) -> Option<u8> {
    let mut counts = [0usize; 256];
    for &v in votes {
        counts[v as usize] += 1;
    }
    votes
        .iter()
        .map(|&v| v as usize)
        .max_by_key(|&v| (counts[v], std::cmp::Reverse(v)))
        .map(|v| v as u8)
}

/// One replica's contribution to an ensemble verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vote {
    /// Fleet index of the voting replica.
    pub replica: usize,
    /// The label it predicted.
    pub class: u8,
}

/// The outcome of an ensemble read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleVerdict {
    /// The majority label.
    pub class: u8,
    /// Every replica's vote, in fleet-index order.
    pub votes: Vec<Vote>,
    /// Whether every replica agreed.
    pub unanimous: bool,
}

/// A handle onto the k in-flight legs of one ensemble read. Created by
/// [`Fleet::ensemble_submit`](crate::Fleet::ensemble_submit).
#[derive(Debug)]
pub struct EnsembleTicket {
    pub(crate) parts: Vec<(usize, Ticket)>,
}

impl EnsembleTicket {
    /// Blocks until every leg answers, then majority-votes.
    ///
    /// A leg that fails with a typed serving error is simply excluded
    /// from the slate — redundancy is the point of the ensemble — as
    /// long as at least one leg answers.
    ///
    /// # Errors
    ///
    /// Returns the last leg's error when *every* leg failed.
    pub fn wait(self) -> Result<EnsembleVerdict> {
        let mut votes = Vec::with_capacity(self.parts.len());
        let mut last_err = None;
        for (replica, ticket) in self.parts {
            match ticket.wait() {
                Ok(prediction) => votes.push(Vote {
                    replica,
                    class: prediction.class,
                }),
                Err(source) => {
                    vortex_obs::counter!("fleet.ensemble.leg_errors").incr();
                    last_err = Some(FleetError::Replica { replica, source });
                }
            }
        }
        let Some(class) = majority_vote(&votes.iter().map(|v| v.class).collect::<Vec<_>>()) else {
            return Err(last_err.unwrap_or(FleetError::NoRoutableReplica));
        };
        let unanimous = votes.iter().all(|v| v.class == class);
        vortex_obs::counter!("fleet.ensemble.verdicts").incr();
        if !unanimous {
            vortex_obs::counter!("fleet.ensemble.split_verdicts").incr();
        }
        Ok(EnsembleVerdict {
            class,
            votes,
            unanimous,
        })
    }
}

/// Offline ensemble accuracy: every model classifies `data`, the
/// per-sample labels are majority-voted, and the vote is scored against
/// the ground truth. This is the measurement the `fleet` bench
/// experiment gates in CI (ensemble-of-5 ≥ best single chip at high
/// sigma); the serving path ([`EnsembleTicket`]) votes the same way.
///
/// # Errors
///
/// Propagates the first replica read failure; an empty model slice is
/// rejected as a [`RuntimeError::InvalidParameter`].
pub fn ensemble_accuracy(
    models: &[&CompiledModel],
    data: &Dataset,
) -> std::result::Result<f64, RuntimeError> {
    if models.is_empty() {
        return Err(RuntimeError::InvalidParameter {
            name: "models",
            requirement: "an ensemble needs at least one model",
        });
    }
    let per_model: Vec<Vec<u8>> = models
        .iter()
        .map(|m| m.infer_dataset(data, Parallelism::Serial))
        .collect::<std::result::Result<_, _>>()?;
    let mut correct = 0usize;
    let mut slate = Vec::with_capacity(models.len());
    for k in 0..data.len() {
        slate.clear();
        slate.extend(per_model.iter().map(|p| p[k]));
        let vote = majority_vote(&slate).expect("non-empty slate");
        if vote == data.label(k) {
            correct += 1;
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_picks_the_mode() {
        assert_eq!(majority_vote(&[1, 2, 2, 3, 2]), Some(2));
        assert_eq!(majority_vote(&[7]), Some(7));
        assert_eq!(majority_vote(&[]), None);
    }

    #[test]
    fn majority_vote_breaks_ties_toward_the_smallest_label() {
        assert_eq!(majority_vote(&[4, 1, 4, 1]), Some(1));
        assert_eq!(majority_vote(&[9, 3]), Some(3));
        assert_eq!(majority_vote(&[2, 1, 0]), Some(0));
    }

    #[test]
    fn majority_vote_is_order_independent() {
        let mut votes = vec![5u8, 5, 2, 2, 9];
        let forward = majority_vote(&votes);
        votes.reverse();
        assert_eq!(majority_vote(&votes), forward);
    }
}
