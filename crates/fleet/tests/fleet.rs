//! Fleet integration tests: routing determinism across pool sizes,
//! hot-swap atomicity under concurrent traffic, drain transparency, and
//! end-to-end ensemble voting.
//!
//! Models are built straight from the crossbar primitives (no training)
//! so each test fabricates its replicas in milliseconds; every replica
//! programs the *same* logical weights from a *different* fabrication
//! seed — the fleet's whole premise in miniature.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vortex_device::DeviceParams;
use vortex_fleet::prelude::*;
use vortex_linalg::{Matrix, Xoshiro256PlusPlus};
use vortex_nn::pool::WorkerPool;
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};

const ROWS: usize = 6;
const COLS: usize = 3;

/// One simulated chip: the shared logical weights programmed under the
/// given fabrication seed.
fn chip(seed: u64) -> Arc<CompiledModel> {
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 8.0,
        ..CrossbarConfig::ideal(ROWS, COLS, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(ROWS, COLS, |i, j| {
        ((i * COLS + j) as f64 * 0.53).sin() * 0.8
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..ROWS).collect();
    let calibration = vec![0.5; ROWS];
    Arc::new(
        CompiledModel::compile(
            &pair.freeze(),
            &assignment,
            &ReadOptions::new(Fidelity::Calibrated),
            Some(&calibration),
        )
        .unwrap(),
    )
}

fn chips(n: usize) -> Vec<(u64, Arc<CompiledModel>)> {
    (0..n as u64).map(|s| (s + 100, chip(s + 100))).collect()
}

fn input(k: usize) -> Vec<f64> {
    (0..ROWS)
        .map(|i| ((i * 7 + k) as f64 * 0.37).sin().abs())
        .collect()
}

/// The replica sequence a serialized caller observes must not depend on
/// the worker-pool size underneath — the routing decision happens at
/// submit, not at dispatch.
#[test]
fn routing_is_deterministic_across_pool_sizes_1_4_8() {
    for policy in [RoutingPolicy::RoundRobin, RoutingPolicy::ConsistentHash] {
        let mut sequences: Vec<Vec<usize>> = Vec::new();
        for pool_size in [1usize, 4, 8] {
            let pool = Arc::new(WorkerPool::new(pool_size));
            let fleet = Fleet::on_pool(
                pool,
                chips(3),
                FleetConfig::new(policy).with_scheduler(SchedulerConfig::deterministic()),
            )
            .unwrap();
            let mut sequence = Vec::new();
            for k in 0..60u64 {
                let (replica, ticket) = fleet
                    .submit(k.wrapping_mul(0x9E37), input(k as usize), None)
                    .unwrap();
                ticket.wait().unwrap();
                sequence.push(replica);
            }
            fleet.shutdown();
            sequences.push(sequence);
        }
        assert_eq!(
            sequences[0], sequences[1],
            "{policy:?}: pool 1 vs 4 disagree"
        );
        assert_eq!(
            sequences[1], sequences[2],
            "{policy:?}: pool 4 vs 8 disagree"
        );
        match policy {
            RoutingPolicy::RoundRobin => {
                // Strict rotation: replica (n mod 3) for the n-th submit.
                assert!(sequences[0].iter().enumerate().all(|(n, &r)| r == n % 3));
            }
            _ => {
                // Consistent hashing spreads the 60 distinct keys.
                let mut seen = [false; 3];
                for &r in &sequences[0] {
                    seen[r] = true;
                }
                assert!(seen.iter().all(|&s| s), "some replica never keyed");
            }
        }
    }
}

/// Hammer one replica with reads while another thread hot-swaps its
/// model back and forth: every answer must equal the old model's or the
/// new model's prediction for that input — a torn model (half-old,
/// half-new state) would produce something else.
#[test]
fn hot_swap_under_concurrent_traffic_never_tears_the_model() {
    let old = chip(100);
    let new = chip(777);
    // Offline ground truth from each frozen chip.
    let old_pred: Vec<u8> = (0..32).map(|k| old.infer(&input(k)).unwrap()).collect();
    let new_pred: Vec<u8> = (0..32).map(|k| new.infer(&input(k)).unwrap()).collect();

    let pool = Arc::new(WorkerPool::new(4));
    let fleet = Arc::new(
        Fleet::on_pool(
            pool,
            vec![(100, Arc::clone(&old))],
            FleetConfig::new(RoutingPolicy::RoundRobin).with_scheduler(
                SchedulerConfig::new(Parallelism::Fixed(2)).with_queue_capacity(256),
            ),
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let fleet = Arc::clone(&fleet);
        let stop = Arc::clone(&stop);
        let (old, new) = (Arc::clone(&old), Arc::clone(&new));
        std::thread::spawn(move || {
            let mut flips = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let model = if flips % 2 == 0 { &new } else { &old };
                fleet.swap_replica(0, Arc::clone(model)).unwrap();
                flips += 1;
                std::thread::yield_now();
            }
        })
    };

    for round in 0..50 {
        let tickets: Vec<(usize, Ticket)> = (0..32)
            .map(|k| {
                let (_, t) = fleet
                    .submit((round * 32 + k) as u64, input(k), None)
                    .unwrap();
                (k, t)
            })
            .collect();
        for (k, ticket) in tickets {
            let p = ticket.wait().unwrap();
            assert!(
                p.class == old_pred[k] || p.class == new_pred[k],
                "request {k}: class {} is neither old ({}) nor new ({}) — torn model",
                p.class,
                old_pred[k],
                new_pred[k]
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    swapper.join().unwrap();
    fleet.shutdown();
}

/// Draining a replica must (a) let its in-flight requests finish, (b)
/// route every new request around it, and (c) be reversible.
#[test]
fn drain_routes_around_a_replica_without_losing_in_flight_requests() {
    let pool = Arc::new(WorkerPool::new(4));
    let fleet = Arc::new(
        Fleet::on_pool(
            pool,
            chips(3),
            FleetConfig::new(RoutingPolicy::RoundRobin).with_scheduler(
                SchedulerConfig::deterministic()
                    .with_queue_capacity(64)
                    .paused(),
            ),
        )
        .unwrap(),
    );

    // Backlog lands while every pump sleeps: four requests per replica.
    let tickets: Vec<Ticket> = (0..12)
        .map(|k| fleet.submit(k as u64, input(k), None).unwrap().1)
        .collect();
    assert!(fleet.queue_depths().iter().all(|&d| d == 4));

    // Drain replica 1 from another thread; it must block until the
    // backlog empties, which only happens once the pumps resume.
    let drainer = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || fleet.drain(1))
    };
    while fleet.status(1) != ReplicaStatus::Draining {
        std::thread::yield_now();
    }
    fleet.resume_all();
    drainer.join().unwrap();

    // (a) every in-flight request answered.
    for t in tickets {
        t.wait().unwrap();
    }
    // (b) new traffic routes around the draining replica…
    assert_eq!(fleet.status(1), ReplicaStatus::Draining);
    assert_eq!(fleet.routable(), vec![true, false, true]);
    for k in 0..10 {
        let (replica, ticket) = fleet.submit(k as u64, input(k), None).unwrap();
        assert_ne!(replica, 1, "drained replica took new traffic");
        ticket.wait().unwrap();
    }
    // …and an ensemble read skips it too.
    let verdict = fleet.ensemble_submit(input(0), 3).unwrap().wait().unwrap();
    assert_eq!(
        verdict.votes.iter().map(|v| v.replica).collect::<Vec<_>>(),
        vec![0, 2]
    );

    // (c) undrain returns it to rotation.
    fleet.undrain(1);
    assert_eq!(fleet.status(1), ReplicaStatus::Serving);
    let picks: Vec<usize> = (0..6)
        .map(|k| {
            let (replica, t) = fleet.submit(k as u64, input(k), None).unwrap();
            t.wait().unwrap();
            replica
        })
        .collect();
    assert!(picks.contains(&1), "undrained replica never rejoined");
    fleet.shutdown();
}

/// The served ensemble verdict must equal the offline majority vote of
/// the individual chips, leg for leg.
#[test]
fn staggered_replica_ages_and_heal_reset() {
    use std::time::Duration;
    use vortex_device::drift::RetentionModel;

    // Replica 0 serves a drift-aged chip with a frozen canary set; the
    // rest are fresh. Ages are staggered the way a rolling deployment
    // leaves them.
    let with_canaries = |m: Arc<CompiledModel>| {
        Arc::new(
            (*m).clone()
                .with_canary_inputs((0..16).map(input).collect())
                .unwrap(),
        )
    };
    let fresh0 = with_canaries(chip(100));
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
    let aged0 = Arc::new(fresh0.age_with(&retention, 1e8, 7).unwrap());
    assert!(aged0.canary_accuracy().unwrap() < 1.0);
    let models = vec![
        (100u64, aged0),
        (101, with_canaries(chip(101))),
        (102, with_canaries(chip(102))),
    ];
    let pool = Arc::new(WorkerPool::new(2));
    let fleet = Fleet::on_pool(
        pool,
        models,
        FleetConfig::new(RoutingPolicy::RoundRobin)
            .with_scheduler(SchedulerConfig::deterministic()),
    )
    .unwrap();

    // Fresh fleet: every age is zero until the lifetime clock advances.
    assert_eq!(fleet.replica_ages(), vec![0.0, 0.0, 0.0]);
    fleet.set_replica_age(0, 3.0e6).unwrap();
    fleet.set_replica_age(1, 2.0e6).unwrap();
    fleet.set_replica_age(2, 1.0e6).unwrap();
    assert_eq!(fleet.replica_ages(), vec![3.0e6, 2.0e6, 1.0e6]);
    assert!(fleet.set_replica_age(0, -1.0).is_err());
    assert!(fleet.set_replica_age(0, f64::NAN).is_err());

    // Healing the oldest replica hot-swaps a fresh compile in and
    // restarts its lifetime clock; the others keep their stagger.
    let replacement = fresh0;
    let outcome = fleet
        .heal_replica(
            0,
            HealthConfig::new(1.0, Duration::from_millis(10)).unwrap(),
            move || Ok(Arc::clone(&replacement)),
        )
        .unwrap();
    assert!(matches!(outcome, ProbeOutcome::Recovered { .. }));
    assert_eq!(fleet.replica_ages(), vec![0.0, 2.0e6, 1.0e6]);

    // A heal that finds a healthy replica leaves its age alone.
    let replacement1 = with_canaries(chip(101));
    let outcome = fleet
        .heal_replica(
            1,
            HealthConfig::new(0.5, Duration::from_millis(10)).unwrap(),
            move || Ok(Arc::clone(&replacement1)),
        )
        .unwrap();
    assert!(matches!(outcome, ProbeOutcome::Healthy { .. }));
    assert_eq!(fleet.replica_age(1), 2.0e6);
    fleet.shutdown();
}

#[test]
fn ensemble_read_votes_exactly_like_the_offline_models() {
    let models = chips(5);
    let pool = Arc::new(WorkerPool::new(4));
    let fleet = Fleet::on_pool(
        pool,
        models.clone(),
        FleetConfig::new(RoutingPolicy::RoundRobin)
            .with_scheduler(SchedulerConfig::deterministic()),
    )
    .unwrap();

    for k in 0..24 {
        let x = input(k);
        let offline: Vec<u8> = models.iter().map(|(_, m)| m.infer(&x).unwrap()).collect();
        let expected = majority_vote(&offline).unwrap();
        let verdict = fleet.ensemble_submit(x, 5).unwrap().wait().unwrap();
        assert_eq!(verdict.class, expected, "sample {k}");
        assert_eq!(verdict.votes.len(), 5);
        for (leg, vote) in verdict.votes.iter().enumerate() {
            assert_eq!(vote.replica, leg, "legs in fleet-index order");
            assert_eq!(vote.class, offline[leg], "leg {leg} of sample {k}");
        }
        assert_eq!(
            verdict.unanimous,
            offline.iter().all(|&c| c == expected),
            "sample {k}"
        );
    }

    // k larger than the fleet clamps; k = 0 is rejected.
    let verdict = fleet.ensemble_submit(input(0), 99).unwrap().wait().unwrap();
    assert_eq!(verdict.votes.len(), 5);
    assert!(matches!(
        fleet.ensemble_submit(input(0), 0),
        Err(FleetError::InvalidParameter { name: "k", .. })
    ));
    fleet.shutdown();
}
