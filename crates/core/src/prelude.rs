//! The one-import front door: `use vortex_core::prelude::*;`.
//!
//! Re-exports the canonical entry points of the whole workspace — the
//! substrate description ([`HardwareEnv`], [`CellKind`]), the compile
//! path ([`ModelCompiler`] via [`HardwareEnv::compiler`], the
//! [`CompileRequest`] builder and its [`CompileOptions`], the pluggable
//! [`EncodingSpec`]/[`WeightEncoding`] strategies), the frozen read
//! ([`CompiledModel`], [`Fidelity`], [`EncodingTable`]), the Monte-Carlo
//! executor knob ([`Parallelism`]) and the unified [`Error`]/[`Result`]
//! facade — so an application can go from trained weights to a servable
//! model without hunting through seven crates.

pub use crate::error::{Error, Result};
pub use crate::pipeline::{
    evaluate_hardware, evaluate_hardware_with, CompileOptions, CompileRequest, HardwareEnv,
    HardwareEvaluation, ModelCompiler, ReadFidelity,
};
pub use crate::vortex::{VortexConfig, VortexPipeline};
pub use crate::CoreError;
pub use vortex_device::cell::CellKind;
pub use vortex_nn::executor::Parallelism;
pub use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
pub use vortex_xbar::encoding::{EncodingScheme, EncodingSpec, EncodingTable, WeightEncoding};
