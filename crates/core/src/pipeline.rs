//! Shared hardware-evaluation harness: fabricate → map → program →
//! compile → infer.
//!
//! Every training scheme in this crate (OLD, CLD, Vortex) is ultimately
//! judged the same way the paper judges them: program the trained weights
//! into a (simulated) crossbar pair and measure the fraction of *test*
//! samples the hardware classifies correctly, averaged over Monte-Carlo
//! fabrication draws.
//!
//! Since the runtime split, the read path lives in `vortex_runtime`: each
//! draw is compiled **once** into an immutable [`CompiledModel`] by a
//! [`ModelCompiler`] ([`HardwareEnv::compiler`]) — fabricate, program and
//! calibrate happen there — and scoring is a pure batched inference over
//! the test set. The compiled read is bit-exact with the live
//! [`DifferentialPair::read`], so evaluation numbers are unchanged.

use serde::{Deserialize, Serialize};
use vortex_device::cell::CellKind;
use vortex_device::defects::DefectModel;
use vortex_device::{DeviceParams, VariationModel};
use vortex_linalg::rng::{SplitMix64, Xoshiro256PlusPlus};
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::executor::{run_trials, Parallelism};
use vortex_nn::pool::WorkerPool;
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::encoding::{EncodingContext, EncodingSpec, EncodingTable};
use vortex_xbar::irdrop::ProgramVoltageMap;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};
use vortex_xbar::program::{program_with_protocol, ProgramOptions};
use vortex_xbar::sensing::Adc;

use crate::amp::greedy::RowMapping;
use crate::amp::sensitivity::row_sensitivity;
use crate::{CoreError, Result};

/// Read-path circuit fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadFidelity {
    /// Perfect wires.
    Ideal,
    /// Rank-1 calibrated attenuation (one mesh solve per fabrication).
    FastIrDrop,
    /// Full nodal solve per sample (small arrays only).
    ExactIrDrop,
}

/// The physical substrate an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareEnv {
    /// Nominal device corner.
    pub device: DeviceParams,
    /// Device variation model (σ of the paper's sweeps).
    pub variation: VariationModel,
    /// Fabrication defects.
    pub defects: DefectModel,
    /// Wire resistance per segment (Ω); 0 disables IR-drop entirely.
    pub r_wire: f64,
    /// Readout ADC resolution in bits (`None` = ideal sensing).
    pub adc_bits: Option<u32>,
    /// Input DAC resolution in bits (`None` = ideal drivers). The paper's
    /// setup drives rows with digital voltages (§2.1), so finite input
    /// resolution is part of the substrate.
    pub dac_bits: Option<u32>,
    /// Read-path fidelity.
    pub read_fidelity: ReadFidelity,
    /// Whether programming pulses suffer IR-drop degradation.
    pub program_irdrop: bool,
    /// Whether the open-loop programmer compensates its pulse widths with
    /// the analytic IR-drop estimate (Liu et al., ICCAD'14 — reference
    /// \[10\] of the paper).
    pub compensate_program_irdrop: bool,
    /// Largest weight magnitude the conductance mapping must represent.
    pub w_max: f64,
    /// Cell topology: the paper's passive 1R crossbar (default) or a
    /// 1T-1R array whose access transistor compresses effective
    /// conductance; programming targets are pre-distorted NEAT-style to
    /// counteract it (saturating at the top of the weight range).
    pub cell: CellKind,
}

impl HardwareEnv {
    /// An ideal substrate: no variation, no defects, no IR-drop, ideal
    /// sensing.
    pub fn ideal() -> Self {
        Self {
            device: DeviceParams::default(),
            variation: VariationModel::none(),
            defects: DefectModel::none(),
            r_wire: 0.0,
            adc_bits: None,
            dac_bits: None,
            read_fidelity: ReadFidelity::Ideal,
            program_irdrop: false,
            compensate_program_irdrop: false,
            w_max: 2.0,
            cell: CellKind::OneR,
        }
    }

    /// An environment with lognormal parametric variation σ and otherwise
    /// ideal periphery — the setting of Fig. 4 / Fig. 9.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a negative σ.
    pub fn with_sigma(sigma: f64) -> Result<Self> {
        Ok(Self {
            variation: VariationModel::parametric(sigma)?,
            ..Self::ideal()
        })
    }

    /// Enables IR-drop with the given wire resistance on both the
    /// programming and read paths (fast models).
    pub fn with_ir_drop(mut self, r_wire: f64) -> Self {
        self.r_wire = r_wire;
        self.read_fidelity = if r_wire > 0.0 {
            ReadFidelity::FastIrDrop
        } else {
            ReadFidelity::Ideal
        };
        self.program_irdrop = r_wire > 0.0;
        self
    }

    /// The crossbar configuration for an `rows × cols` array on this
    /// substrate.
    pub fn crossbar_config(&self, rows: usize, cols: usize) -> CrossbarConfig {
        CrossbarConfig {
            rows,
            cols,
            device: self.device,
            r_wire: self.r_wire,
            variation: self.variation,
            defects: self.defects,
        }
    }

    /// The readout ADC for an array with `rows` driven rows, if sensing is
    /// quantized. Full scale is sized to the worst-case column current
    /// (every device at LRS, every input at full drive).
    ///
    /// # Errors
    ///
    /// Propagates ADC construction errors.
    pub fn read_adc(&self, rows: usize) -> Result<Option<Adc>> {
        match self.adc_bits {
            None => Ok(None),
            Some(bits) => {
                let full_scale = rows as f64 * self.device.g_on();
                Ok(Some(Adc::new(bits, full_scale).map_err(CoreError::Xbar)?))
            }
        }
    }

    /// The input driver DAC (unit reference voltage — pixel inputs live in
    /// `[0, 1]`), if input quantization is modeled.
    ///
    /// # Errors
    ///
    /// Propagates DAC construction errors.
    pub fn input_dac(&self) -> Result<Option<vortex_xbar::sensing::Dac>> {
        match self.dac_bits {
            None => Ok(None),
            Some(bits) => Ok(Some(
                vortex_xbar::sensing::Dac::new(bits, 1.0).map_err(CoreError::Xbar)?,
            )),
        }
    }

    /// The runtime read-path options for an array with `rows` physical
    /// rows: fidelity plus the sized peripheral converters.
    ///
    /// # Errors
    ///
    /// Propagates converter construction errors.
    pub fn read_options(&self, rows: usize) -> Result<ReadOptions> {
        Ok(ReadOptions {
            fidelity: match self.read_fidelity {
                ReadFidelity::Ideal => Fidelity::Ideal,
                ReadFidelity::FastIrDrop => Fidelity::Calibrated,
                ReadFidelity::ExactIrDrop => Fidelity::Exact,
            },
            adc: self.read_adc(rows)?,
            dac: self.input_dac()?,
        })
    }
}

/// Outcome of one hardware evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareEvaluation {
    /// Mean test rate over the Monte-Carlo draws.
    pub mean_test_rate: f64,
    /// Per-draw test rates.
    pub per_draw: Vec<f64>,
}

/// Programs `weights` into a freshly fabricated crossbar pair under
/// `mapping` and measures classification accuracy on `test`, repeated for
/// `mc_draws` independent fabrications.
///
/// Fabrication draws fan out over [`Parallelism::Auto`] (the
/// `VORTEX_MC_THREADS` override applies); results are bit-identical to
/// the serial loop for any thread count. Use [`evaluate_hardware_with`]
/// to pin the pool size.
///
/// # Errors
///
/// Propagates fabrication, programming and readout errors.
pub fn evaluate_hardware(
    weights: &Matrix,
    mapping: &RowMapping,
    env: &HardwareEnv,
    test: &Dataset,
    mc_draws: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<HardwareEvaluation> {
    evaluate_hardware_with(
        weights,
        mapping,
        env,
        test,
        mc_draws,
        rng,
        Parallelism::Auto,
    )
}

/// [`evaluate_hardware`] with an explicit executor configuration.
///
/// Each draw's generator is pre-split from `rng` in draw order before
/// fan-out, so every [`Parallelism`] setting produces the same per-draw
/// rates, in the same order. When several draws fail, the error of the
/// earliest (by draw index) is returned, again independent of scheduling.
///
/// # Errors
///
/// Propagates fabrication, programming and readout errors.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_hardware_with(
    weights: &Matrix,
    mapping: &RowMapping,
    env: &HardwareEnv,
    test: &Dataset,
    mc_draws: usize,
    rng: &mut Xoshiro256PlusPlus,
    parallelism: Parallelism,
) -> Result<HardwareEvaluation> {
    if mc_draws == 0 {
        return Err(CoreError::InvalidParameter {
            name: "mc_draws",
            requirement: "must be positive",
        });
    }
    if weights.rows() != mapping.logical_rows() {
        return Err(CoreError::InvalidParameter {
            name: "mapping",
            requirement: "logical row count must match the weight matrix",
        });
    }
    let _span = vortex_obs::span!("pipeline.evaluate_seconds");
    vortex_obs::counter!("pipeline.evaluations").incr();
    vortex_obs::counter!("pipeline.draws").add(mc_draws as u64);
    let compiler = env.compiler().with_calibration(&test.mean_input());
    let draws = run_trials(rng, mc_draws, parallelism, |_, draw_rng| {
        // Compile once per fabrication draw, then batch-infer the test
        // set through the frozen read path.
        let model = compiler.compile(weights, mapping, draw_rng)?;
        score_model(&model, test)
    });
    let per_draw = draws.into_iter().collect::<Result<Vec<f64>>>()?;
    let mean_test_rate = per_draw.iter().sum::<f64>() / per_draw.len() as f64;
    Ok(HardwareEvaluation {
        mean_test_rate,
        per_draw,
    })
}

/// The compile path from trained weights to a servable [`CompiledModel`],
/// as a builder: fabricate → program → freeze, on one [`HardwareEnv`].
///
/// Obtained from [`HardwareEnv::compiler`]. The builder owns its
/// substrate (a `Copy` of the env) and the optional IR-drop calibration
/// input, so the three pipeline stages — [`program`](Self::program),
/// [`freeze`](Self::freeze), [`compile`](Self::compile) — need only the
/// per-model arguments.
///
/// ```no_run
/// # use vortex_core::pipeline::HardwareEnv;
/// # use vortex_core::amp::greedy::RowMapping;
/// # use vortex_linalg::{Matrix, Xoshiro256PlusPlus};
/// # fn demo(weights: &Matrix, mapping: &RowMapping, calibration: &[f64],
/// #         rng: &mut Xoshiro256PlusPlus) -> vortex_core::Result<()> {
/// let env = HardwareEnv::ideal().with_ir_drop(4.0);
/// let model = env
///     .compiler()
///     .with_calibration(calibration)
///     .compile(weights, mapping, rng)?;
/// # let _ = model; Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCompiler {
    env: HardwareEnv,
    calibration: Option<Vec<f64>>,
}

impl HardwareEnv {
    /// A [`ModelCompiler`] over this substrate.
    pub fn compiler(&self) -> ModelCompiler {
        ModelCompiler::new(*self)
    }
}

impl ModelCompiler {
    /// A compiler over `env`, with no calibration input yet.
    pub fn new(env: HardwareEnv) -> Self {
        Self {
            env,
            calibration: None,
        }
    }

    /// Sets the logical-space reference input used for IR-drop
    /// calibration (conventionally the mean test input). Ignored at
    /// fidelities that do not calibrate.
    pub fn with_calibration(mut self, calibration: &[f64]) -> Self {
        self.calibration = Some(calibration.to_vec());
        self
    }

    /// The substrate this compiler programs onto.
    pub fn env(&self) -> &HardwareEnv {
        &self.env
    }

    /// Starts a [`CompileRequest`] for `weights` under `mapping`: the
    /// builder form of the compile path, carrying encoding, seed, canary
    /// and parallelism choices in one options struct.
    pub fn request<'a>(
        &'a self,
        weights: &'a Matrix,
        mapping: &'a RowMapping,
    ) -> CompileRequest<'a> {
        CompileRequest {
            compiler: self,
            weights,
            mapping,
            options: CompileOptions::new(),
        }
    }

    /// Fabricates a pair and open-loop programs `weights` through
    /// `mapping` (the physical array has `mapping.physical_rows()` rows).
    ///
    /// # Errors
    ///
    /// Propagates fabrication and programming errors.
    pub fn program(
        &self,
        weights: &Matrix,
        mapping: &RowMapping,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<DifferentialPair> {
        self.program_encoded(weights, mapping, EncodingSpec::DifferentialPair, rng)
            .map(|(pair, _)| pair)
    }

    /// Per-physical-row AMP sensitivity `|x̄·w|` from the calibration
    /// input, routed through `mapping`; `None` when no calibration is
    /// set (encodings then fall back to the row weight mass).
    fn physical_sensitivity(
        &self,
        physical_weights: &Matrix,
        mapping: &RowMapping,
    ) -> Result<Option<Vec<f64>>> {
        let Some(cal) = self.calibration.as_deref() else {
            return Ok(None);
        };
        if cal.len() != mapping.logical_rows() {
            return Err(CoreError::InvalidParameter {
                name: "calibration",
                requirement: "length must match the logical row count",
            });
        }
        let mut mean_abs = vec![0.0; physical_weights.rows()];
        for (p, &q) in mapping.assignment().iter().enumerate() {
            mean_abs[q] = cal[p].abs();
        }
        Ok(Some(row_sensitivity(physical_weights, &mean_abs)))
    }

    /// The programming stage with an explicit weight encoding: fabricate,
    /// encode the physical weights into per-crossbar targets (quantizing
    /// and pre-distorting for the cell topology as the spec and
    /// [`HardwareEnv::cell`] demand), then run the open-loop protocol.
    ///
    /// The default differential encoding on a 1R array takes a transform-
    /// free fast path that is bit-identical to the historical programming
    /// code — same float operations, no RNG consumed by the encoder.
    fn program_encoded(
        &self,
        weights: &Matrix,
        mapping: &RowMapping,
        spec: EncodingSpec,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<(DifferentialPair, EncodingTable)> {
        let env = &self.env;
        let cols = weights.cols();
        let physical_rows = mapping.physical_rows();
        let config = env.crossbar_config(physical_rows, cols);
        let wm = WeightMapping::new(&env.device, env.w_max).map_err(CoreError::Xbar)?;
        let mut pair = DifferentialPair::fabricate(config, wm, rng).map_err(CoreError::Xbar)?;

        let physical_weights = mapping.apply_to_rows(weights, 0.0);
        let (targets_pos, targets_neg, table) = if spec.is_differential() && env.cell.is_one_r() {
            // The paper's path, untouched: no quantizer, no cell
            // transform, bit-for-bit the pre-encoding target math.
            let (pos, neg) = pair.mapping().weights_to_targets(&physical_weights);
            (pos, neg, EncodingTable::differential(physical_rows))
        } else {
            let sensitivity = if matches!(spec, EncodingSpec::AdaptiveRowQuant { .. }) {
                self.physical_sensitivity(&physical_weights, mapping)?
            } else {
                None
            };
            let ctx = EncodingContext {
                row_sensitivity: sensitivity.as_deref(),
            };
            let encoder = spec.build().map_err(CoreError::Xbar)?;
            let encoded = encoder
                .encode(&physical_weights, pair.mapping(), &ctx)
                .map_err(CoreError::Xbar)?;
            let (mut pos, mut neg) = (encoded.pos, encoded.neg);
            if !env.cell.is_one_r() {
                // NEAT-style pre-distortion: program the conductance that
                // reads as the desired one through the access transistor.
                let (g_min, g_max) = (pair.mapping().g_min(), pair.mapping().g_max());
                let cell = env.cell;
                pos.map_inplace(|g| cell.program_target(g, g_min, g_max));
                neg.map_inplace(|g| cell.program_target(g, g_min, g_max));
            }
            (pos, neg, encoded.table)
        };

        let (actual_pos, actual_neg, estimate_pos, estimate_neg) =
            if env.program_irdrop && env.r_wire > 0.0 {
                let v = env.device.v_program();
                let ap = ProgramVoltageMap::analytic(&targets_pos, env.r_wire, v)
                    .map_err(CoreError::Xbar)?;
                let an = ProgramVoltageMap::analytic(&targets_neg, env.r_wire, v)
                    .map_err(CoreError::Xbar)?;
                let (ep, en) = if env.compensate_program_irdrop {
                    (Some(ap.clone()), Some(an.clone()))
                } else {
                    (None, None)
                };
                (Some(ap), Some(an), ep, en)
            } else {
                (None, None, None, None)
            };

        let opts_pos = ProgramOptions {
            compensation: estimate_pos,
            half_select_disturb: false,
        };
        let opts_neg = ProgramOptions {
            compensation: estimate_neg,
            half_select_disturb: false,
        };
        program_with_protocol(
            pair.pos_mut(),
            &targets_pos,
            actual_pos.as_ref(),
            &opts_pos,
            rng,
        )
        .map_err(CoreError::Xbar)?;
        program_with_protocol(
            pair.neg_mut(),
            &targets_neg,
            actual_neg.as_ref(),
            &opts_neg,
            rng,
        )
        .map_err(CoreError::Xbar)?;
        Ok((pair, table))
    }

    /// Freezes a programmed pair into an immutable [`CompiledModel`]
    /// under the substrate's read path, using the calibration input set
    /// via [`with_calibration`](Self::with_calibration) (if any).
    ///
    /// # Errors
    ///
    /// Propagates calibration and configuration errors.
    pub fn freeze(&self, pair: &DifferentialPair, mapping: &RowMapping) -> Result<CompiledModel> {
        self.freeze_with_table(pair, mapping, EncodingTable::differential(pair.rows()))
    }

    /// [`Self::freeze`] carrying the encoding table the programming stage
    /// produced. On a 1T-1R substrate the frozen conductances are mapped
    /// through the access transistor here, so the compiled read path —
    /// and its calibration — see what the sense amplifiers would.
    fn freeze_with_table(
        &self,
        pair: &DifferentialPair,
        mapping: &RowMapping,
        table: EncodingTable,
    ) -> Result<CompiledModel> {
        let options = self.env.read_options(pair.rows())?;
        let mut state = pair.freeze();
        if !self.env.cell.is_one_r() {
            let cell = self.env.cell;
            state.g_pos.map_inplace(|g| cell.effective_conductance(g));
            state.g_neg.map_inplace(|g| cell.effective_conductance(g));
        }
        CompiledModel::compile_encoded(
            &state,
            mapping.assignment(),
            &options,
            self.calibration.as_deref(),
            table,
        )
        .map_err(CoreError::Runtime)
    }

    /// Fabricates, programs and freezes in one step: the full compile
    /// path from trained weights to a servable [`CompiledModel`].
    ///
    /// Equivalent to `self.request(weights, mapping).compile_with(rng)`
    /// with default options.
    ///
    /// # Errors
    ///
    /// Propagates fabrication, programming and calibration errors.
    pub fn compile(
        &self,
        weights: &Matrix,
        mapping: &RowMapping,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<CompiledModel> {
        self.request(weights, mapping).compile_with(rng)
    }

    /// [`Self::compile`] from a bare variation seed: fabricates a fresh
    /// substrate whose device variations are drawn from `seed` alone, so
    /// every distinct seed is a distinct simulated physical chip and the
    /// same seed always yields the bit-identical model. This is the
    /// canonical way to build fleet replicas.
    ///
    /// # Errors
    ///
    /// See [`Self::compile`].
    pub fn compile_seeded(
        &self,
        weights: &Matrix,
        mapping: &RowMapping,
        seed: u64,
    ) -> Result<CompiledModel> {
        self.request(weights, mapping).seed(seed).compile()
    }

    /// Compiles `n` replicas from `n` distinct variation seeds derived
    /// deterministically from `base_seed` (SplitMix64 stream, so the
    /// seeds — and hence the chips — are independent). Returns
    /// `(seed, model)` pairs in replica order.
    ///
    /// # Errors
    ///
    /// See [`Self::compile`]; the first failing replica (by replica
    /// index) aborts the batch.
    pub fn compile_replicas(
        &self,
        weights: &Matrix,
        mapping: &RowMapping,
        base_seed: u64,
        n: usize,
    ) -> Result<Vec<(u64, CompiledModel)>> {
        self.request(weights, mapping)
            .seed(base_seed)
            .compile_replicas(n)
    }
}

/// Options carried by a [`CompileRequest`].
///
/// Marked `#[non_exhaustive]` so future compile knobs don't break
/// callers: construct via [`CompileOptions::new`] (or the builder methods
/// on [`CompileRequest`]) and mutate fields.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CompileOptions {
    /// Weight→conductance encoding strategy (default: the paper's
    /// continuous differential pair).
    pub encoding: EncodingSpec,
    /// Variation seed for fabrication. Required by
    /// [`CompileRequest::compile`] and [`CompileRequest::compile_replicas`]
    /// (as the replica base seed); unused by
    /// [`CompileRequest::compile_with`], which takes an external stream.
    pub seed: Option<u64>,
    /// Probe inputs to freeze as the model's canary set right after
    /// compilation (see `CompiledModel::with_canary_inputs`).
    pub canary_inputs: Option<Vec<Vec<f64>>>,
    /// Fan-out for [`CompileRequest::compile_replicas`]. Defaults to
    /// [`Parallelism::Serial`] — the historical replica loop; any setting
    /// produces bit-identical models because every replica's RNG stream
    /// is derived from its own seed.
    pub parallelism: Parallelism,
}

impl CompileOptions {
    /// Default options: differential encoding, no seed, no canaries,
    /// serial replica compilation.
    pub fn new() -> Self {
        Self {
            encoding: EncodingSpec::DifferentialPair,
            seed: None,
            canary_inputs: None,
            parallelism: Parallelism::Serial,
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// A single compile invocation, built fluently from
/// [`ModelCompiler::request`]: weights + routing + [`CompileOptions`].
///
/// This is the one place all compile paths meet — the legacy positional
/// methods ([`ModelCompiler::compile`], [`ModelCompiler::compile_seeded`],
/// [`ModelCompiler::compile_replicas`]) are thin delegates over it, pinned
/// bit-equal by the equivalence tests.
///
/// # Example
///
/// ```no_run
/// # use vortex_core::pipeline::HardwareEnv;
/// # use vortex_core::amp::greedy::RowMapping;
/// # use vortex_linalg::Matrix;
/// # use vortex_xbar::encoding::EncodingSpec;
/// # fn demo(weights: &Matrix, mapping: &RowMapping,
/// #         calibration: &[f64]) -> vortex_core::Result<()> {
/// let env = HardwareEnv::with_sigma(0.3)?;
/// let compiler = env.compiler().with_calibration(calibration);
/// let model = compiler
///     .request(weights, mapping)
///     .encoding(EncodingSpec::AdaptiveRowQuant {
///         low_bits: 2,
///         high_bits: 6,
///         fine_fraction: 0.5,
///     })
///     .seed(42)
///     .compile()?;
/// # let _ = model; Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompileRequest<'a> {
    compiler: &'a ModelCompiler,
    weights: &'a Matrix,
    mapping: &'a RowMapping,
    options: CompileOptions,
}

impl CompileRequest<'_> {
    /// Sets the weight encoding strategy.
    pub fn encoding(mut self, spec: EncodingSpec) -> Self {
        self.options.encoding = spec;
        self
    }

    /// Sets the variation seed (replica base seed for
    /// [`Self::compile_replicas`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = Some(seed);
        self
    }

    /// Freezes `inputs` as the compiled model's canary probe set.
    pub fn canary_inputs(mut self, inputs: Vec<Vec<f64>>) -> Self {
        self.options.canary_inputs = Some(inputs);
        self
    }

    /// Sets the replica fan-out parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.options.parallelism = parallelism;
        self
    }

    /// Replaces the whole options struct at once.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// The options as currently configured.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles with an external RNG stream (the Monte-Carlo harness
    /// path); `options.seed` is ignored here.
    ///
    /// # Errors
    ///
    /// Propagates fabrication, programming, calibration and canary
    /// errors.
    pub fn compile_with(&self, rng: &mut Xoshiro256PlusPlus) -> Result<CompiledModel> {
        let _span = vortex_obs::span!("pipeline.compile_seconds");
        let (pair, table) = self.compiler.program_encoded(
            self.weights,
            self.mapping,
            self.options.encoding,
            rng,
        )?;
        let model = self
            .compiler
            .freeze_with_table(&pair, self.mapping, table)?;
        match &self.options.canary_inputs {
            Some(inputs) => model
                .with_canary_inputs(inputs.clone())
                .map_err(CoreError::Runtime),
            None => Ok(model),
        }
    }

    /// Compiles from `options.seed` alone — one seed, one simulated chip,
    /// bit-reproducible.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when no seed was set; otherwise
    /// see [`Self::compile_with`].
    pub fn compile(&self) -> Result<CompiledModel> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.require_seed()?);
        self.compile_with(&mut rng)
    }

    /// Compiles `n` replicas from seeds pre-split off `options.seed`,
    /// fanning out over `options.parallelism` (results are in replica
    /// order and bit-identical at any setting). Returns `(seed, model)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when no seed was set; the first
    /// failing replica (by replica index) aborts the batch.
    pub fn compile_replicas(&self, n: usize) -> Result<Vec<(u64, CompiledModel)>> {
        let mut stream = SplitMix64::new(self.require_seed()?);
        let seeds: Vec<u64> = (0..n).map(|_| stream.next_u64()).collect();
        let compile_one = |i: usize| -> Result<(u64, CompiledModel)> {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seeds[i]);
            Ok((seeds[i], self.compile_with(&mut rng)?))
        };
        let workers = self.options.parallelism.resolve().min(n);
        if workers <= 1 {
            return (0..n).map(compile_one).collect();
        }
        WorkerPool::global()
            .run_indexed(n, workers, compile_one)
            .into_iter()
            .collect()
    }

    fn require_seed(&self) -> Result<u64> {
        self.options.seed.ok_or(CoreError::InvalidParameter {
            name: "seed",
            requirement: "set a seed on the request (or use compile_with an external rng)",
        })
    }
}

/// Scores a compiled model on `test` (serial batched inference).
fn score_model(model: &CompiledModel, test: &Dataset) -> Result<f64> {
    let _span = vortex_obs::span!("pipeline.score_seconds");
    model.accuracy(test).map_err(|e| match e {
        // Shape problems are caller bugs and surface as such; read-path
        // failures keep the historical error shape of this harness.
        vortex_runtime::RuntimeError::InvalidParameter { .. } => CoreError::Runtime(e),
        _ => CoreError::InvalidParameter {
            name: "readout",
            requirement: "hardware read failed during scoring",
        },
    })
}

/// Scores a programmed pair on `test` under the environment's read path.
///
/// The pair is frozen into a [`CompiledModel`] (compile-once) and the
/// test set is batch-inferred through it — bit-exact with the historical
/// per-sample live read.
///
/// # Errors
///
/// Propagates readout errors.
pub fn score_pair(
    pair: &DifferentialPair,
    mapping: &RowMapping,
    env: &HardwareEnv,
    test: &Dataset,
) -> Result<f64> {
    let model = env
        .compiler()
        .with_calibration(&test.mean_input())
        .freeze(pair, mapping)?;
    score_model(&model, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amp::greedy::RowMapping;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::gdt::GdtTrainer;
    use vortex_nn::metrics::accuracy_of_weights;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(123)
    }

    fn small_setup() -> (Dataset, Matrix) {
        let data = SynthDigits::generate(&DatasetConfig::tiny(), 7).unwrap();
        let w = GdtTrainer {
            epochs: 10,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        (data, w)
    }

    #[test]
    fn ideal_hardware_matches_software_accuracy() {
        let (data, w) = small_setup();
        let env = HardwareEnv::ideal();
        let mapping = RowMapping::identity(w.rows());
        let eval = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        let software = accuracy_of_weights(&w, &data);
        assert!(
            (eval.mean_test_rate - software).abs() < 0.05,
            "hardware {} vs software {}",
            eval.mean_test_rate,
            software
        );
    }

    #[test]
    fn variation_degrades_test_rate() {
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let ideal =
            evaluate_hardware(&w, &mapping, &HardwareEnv::ideal(), &data, 1, &mut rng()).unwrap();
        let noisy = evaluate_hardware(
            &w,
            &mapping,
            &HardwareEnv::with_sigma(1.2).unwrap(),
            &data,
            3,
            &mut rng(),
        )
        .unwrap();
        assert!(
            noisy.mean_test_rate < ideal.mean_test_rate,
            "σ=1.2 {} vs ideal {}",
            noisy.mean_test_rate,
            ideal.mean_test_rate
        );
    }

    #[test]
    fn evaluation_is_deterministic_per_seed() {
        let (data, w) = small_setup();
        let env = HardwareEnv::with_sigma(0.6).unwrap();
        let mapping = RowMapping::identity(w.rows());
        let a = evaluate_hardware(&w, &mapping, &env, &data, 2, &mut rng()).unwrap();
        let b = evaluate_hardware(&w, &mapping, &env, &data, 2, &mut rng()).unwrap();
        assert_eq!(a.per_draw, b.per_draw);
    }

    #[test]
    fn mc_draws_validated() {
        let (data, w) = small_setup();
        let env = HardwareEnv::ideal();
        let mapping = RowMapping::identity(w.rows());
        assert!(evaluate_hardware(&w, &mapping, &env, &data, 0, &mut rng()).is_err());
        let bad_mapping = RowMapping::identity(w.rows() + 1);
        assert!(evaluate_hardware(&w, &bad_mapping, &env, &data, 1, &mut rng()).is_err());
    }

    #[test]
    fn coarse_adc_hurts() {
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let mut env = HardwareEnv::ideal();
        env.adc_bits = Some(2);
        let coarse = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        env.adc_bits = None;
        let clean = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        assert!(
            coarse.mean_test_rate <= clean.mean_test_rate + 1e-9,
            "2-bit {} vs ideal {}",
            coarse.mean_test_rate,
            clean.mean_test_rate
        );
    }

    #[test]
    fn coarse_input_dac_degrades_gracefully() {
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let mut env = HardwareEnv::ideal();
        env.dac_bits = Some(1); // binary input drivers
        let coarse = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        env.dac_bits = Some(8);
        let fine = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        env.dac_bits = None;
        let ideal = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        assert!(fine.mean_test_rate >= coarse.mean_test_rate - 0.05);
        assert!((fine.mean_test_rate - ideal.mean_test_rate).abs() < 0.05);
        // Even 1-bit inputs keep the classifier well above chance.
        assert!(
            coarse.mean_test_rate > 0.3,
            "1-bit inputs: {}",
            coarse.mean_test_rate
        );
    }

    #[test]
    fn fast_ir_drop_read_path_works() {
        // Read-path IR-drop alone (no programming degradation): smooth
        // attenuation mostly preserves argmax.
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let mut env = HardwareEnv::ideal();
        env.r_wire = 5.0;
        env.read_fidelity = ReadFidelity::FastIrDrop;
        let eval = evaluate_hardware(&w, &mapping, &env, &data, 1, &mut rng()).unwrap();
        assert!(
            eval.mean_test_rate > 0.5,
            "test rate {}",
            eval.mean_test_rate
        );
    }

    #[test]
    fn staged_compile_matches_the_one_shot_builder() {
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let env = HardwareEnv::with_sigma(0.4).unwrap().with_ir_drop(4.0);
        let calibration = data.mean_input();

        let one_shot = env
            .compiler()
            .with_calibration(&calibration)
            .compile(&w, &mapping, &mut rng())
            .unwrap();
        // program → freeze staged through the same builder must produce
        // the same frozen read, sample for sample: same seed, same
        // substrate, same calibration fold.
        let compiler = env.compiler().with_calibration(&calibration);
        let pair = compiler.program(&w, &mapping, &mut rng()).unwrap();
        let staged = compiler.freeze(&pair, &mapping).unwrap();
        for k in 0..data.len() {
            let x = data.image(k);
            assert_eq!(
                staged.scores(x).unwrap(),
                one_shot.scores(x).unwrap(),
                "sample {k} diverged between staged and one-shot compiles"
            );
        }
    }

    #[test]
    fn uncompensated_program_ir_drop_is_destructive_and_compensation_recovers() {
        let (data, w) = small_setup();
        let mapping = RowMapping::identity(w.rows());
        let uncomp = HardwareEnv::ideal().with_ir_drop(5.0);
        let mut comp = uncomp;
        comp.compensate_program_irdrop = true;
        let bad = evaluate_hardware(&w, &mapping, &uncomp, &data, 1, &mut rng()).unwrap();
        let good = evaluate_hardware(&w, &mapping, &comp, &data, 1, &mut rng()).unwrap();
        assert!(
            good.mean_test_rate > bad.mean_test_rate,
            "compensation {} must beat uncompensated {}",
            good.mean_test_rate,
            bad.mean_test_rate
        );
    }
}
