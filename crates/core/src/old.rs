//! The OLD baseline: Open-Loop off-Device training — §2.2.3 of the paper.
//!
//! OLD trains the network entirely in software (conventional GDT),
//! pre-calculates every programming pulse from the nominal switching
//! model, and programs the crossbar once, blind. Device variation is
//! invisible to the pre-calculation, so every programmed weight lands off
//! target by its device's `e^θ` — the failure mode Vortex exists to fix.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::metrics::{accuracy_of_weights, Rates};

use crate::amp::greedy::RowMapping;
use crate::pipeline::{evaluate_hardware, HardwareEnv};
use crate::Result;

/// Outcome of a full train-program-test pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Training rate (software fit) and mean hardware test rate.
    pub rates: Rates,
    /// The trained (ideal, pre-programming) weights.
    pub weights: Matrix,
    /// Per-Monte-Carlo-draw test rates.
    pub per_draw: Vec<f64>,
}

/// The OLD pipeline configuration.
///
/// # Example
///
/// ```
/// use vortex_core::old::OldPipeline;
/// use vortex_core::pipeline::HardwareEnv;
/// use vortex_linalg::rng::Xoshiro256PlusPlus;
/// use vortex_nn::dataset::{DatasetConfig, SynthDigits};
/// use vortex_nn::split::stratified_split;
///
/// # fn main() -> Result<(), vortex_core::CoreError> {
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
/// let data = SynthDigits::generate(&DatasetConfig::tiny(), 4)?;
/// let split = stratified_split(&data, 150, 80, &mut rng)?;
/// // Blind open-loop programming on hostile (σ = 1.0) devices.
/// let out = OldPipeline::fast()
///     .run(&split.train, &split.test, &HardwareEnv::with_sigma(1.0)?, &mut rng)?;
/// assert!(out.rates.training_rate > out.rates.test_rate); // variation costs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OldPipeline {
    /// The software trainer.
    pub trainer: GdtTrainer,
    /// Monte-Carlo fabrication draws for the test-rate estimate.
    pub mc_draws: usize,
}

impl Default for OldPipeline {
    fn default() -> Self {
        Self {
            trainer: GdtTrainer::default(),
            mc_draws: 5,
        }
    }
}

impl OldPipeline {
    /// A faster configuration for tests.
    pub fn fast() -> Self {
        Self {
            trainer: GdtTrainer {
                epochs: 10,
                ..Default::default()
            },
            mc_draws: 3,
        }
    }

    /// Runs OLD end to end: software training → open-loop programming →
    /// hardware test.
    ///
    /// # Errors
    ///
    /// Propagates training and hardware-evaluation errors.
    pub fn run(
        &self,
        train: &Dataset,
        test: &Dataset,
        env: &HardwareEnv,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<PipelineOutcome> {
        let _span = vortex_obs::span!("pipeline.old_seconds");
        let weights = self.trainer.train(train)?;
        let training_rate = accuracy_of_weights(&weights, train);
        let mapping = RowMapping::identity(weights.rows());
        let eval = evaluate_hardware(&weights, &mapping, env, test, self.mc_draws, rng)?;
        Ok(PipelineOutcome {
            rates: Rates {
                training_rate,
                test_rate: eval.mean_test_rate,
            },
            weights,
            per_draw: eval.per_draw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::split::stratified_split;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(77)
    }

    fn setup() -> (Dataset, Dataset) {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 13).unwrap();
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        (s.train, s.test)
    }

    #[test]
    fn old_on_ideal_hardware_generalizes() {
        let (train, test) = setup();
        let out = OldPipeline::fast()
            .run(&train, &test, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        assert!(out.rates.training_rate > 0.6);
        assert!(out.rates.test_rate > 0.4);
        assert_eq!(out.per_draw.len(), 3);
    }

    #[test]
    fn old_degrades_with_variation() {
        let (train, test) = setup();
        let p = OldPipeline::fast();
        let clean = p
            .run(&train, &test, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        let noisy = p
            .run(
                &train,
                &test,
                &HardwareEnv::with_sigma(1.2).unwrap(),
                &mut rng(),
            )
            .unwrap();
        assert!(
            noisy.rates.test_rate < clean.rates.test_rate,
            "σ=1.2: {} vs clean {}",
            noisy.rates.test_rate,
            clean.rates.test_rate
        );
    }

    #[test]
    fn old_training_rate_is_variation_independent() {
        // OLD trains in software: the training rate cannot depend on the
        // hardware environment.
        let (train, test) = setup();
        let p = OldPipeline::fast();
        let a = p
            .run(&train, &test, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        let b = p
            .run(
                &train,
                &test,
                &HardwareEnv::with_sigma(0.8).unwrap(),
                &mut rng(),
            )
            .unwrap();
        assert_eq!(a.rates.training_rate, b.rates.training_rate);
        assert_eq!(a.weights, b.weights);
    }
}
