//! Summed Weighted Variation (SWV) — Eq. (12) of the paper.
//!
//! `SWV_pq = Σ_j |w_pj · (1 − e^{θ_qj})|` measures the output error
//! incurred by mapping logical weight row `p` onto physical crossbar row
//! `q`, given the pre-tested per-device multipliers `e^{θ̂}`.

use vortex_linalg::Matrix;

use crate::{CoreError, Result};

/// SWV of one (weight row, physical row) pairing for a single crossbar.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn swv_row(weight_row: &[f64], multiplier_row: &[f64]) -> f64 {
    assert_eq!(
        weight_row.len(),
        multiplier_row.len(),
        "swv: length mismatch"
    );
    weight_row
        .iter()
        .zip(multiplier_row)
        .map(|(&w, &m)| (w * (1.0 - m)).abs())
        .sum()
}

/// SWV of one pairing for a differential pair: the positive part of the
/// weight row lands on the positive crossbar's devices, the negative part
/// on the negative crossbar's.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn swv_row_pair(weight_row: &[f64], mult_pos_row: &[f64], mult_neg_row: &[f64]) -> f64 {
    assert_eq!(weight_row.len(), mult_pos_row.len(), "swv: length mismatch");
    assert_eq!(weight_row.len(), mult_neg_row.len(), "swv: length mismatch");
    weight_row
        .iter()
        .zip(mult_pos_row.iter().zip(mult_neg_row))
        .map(|(&w, (&mp, &mn))| {
            if w >= 0.0 {
                (w * (1.0 - mp)).abs()
            } else {
                (w * (1.0 - mn)).abs()
            }
        })
        .sum()
}

/// Full SWV matrix (`logical m × physical M`) for a single crossbar.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if column counts disagree.
pub fn swv_matrix(weights: &Matrix, multipliers: &Matrix) -> Result<Matrix> {
    if weights.cols() != multipliers.cols() {
        return Err(CoreError::InvalidParameter {
            name: "multipliers",
            requirement: "column count must match the weight matrix",
        });
    }
    Ok(Matrix::from_fn(
        weights.rows(),
        multipliers.rows(),
        |p, q| swv_row(weights.row(p), multipliers.row(q)),
    ))
}

/// Full SWV matrix for a differential pair.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if shapes disagree.
pub fn swv_matrix_pair(weights: &Matrix, mult_pos: &Matrix, mult_neg: &Matrix) -> Result<Matrix> {
    if weights.cols() != mult_pos.cols() || mult_pos.shape() != mult_neg.shape() {
        return Err(CoreError::InvalidParameter {
            name: "multipliers",
            requirement: "shapes must agree with the weight matrix",
        });
    }
    Ok(Matrix::from_fn(weights.rows(), mult_pos.rows(), |p, q| {
        swv_row_pair(weights.row(p), mult_pos.row(q), mult_neg.row(q))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swv_zero_for_perfect_devices() {
        assert_eq!(swv_row(&[1.0, -2.0, 0.5], &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn swv_known_value() {
        // |2·(1−1.5)| + |−1·(1−0.5)| = 1.0 + 0.5.
        let v = swv_row(&[2.0, -1.0], &[1.5, 0.5]);
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn swv_scales_with_weight_magnitude() {
        let m = [1.3, 0.8];
        assert!(swv_row(&[2.0, 2.0], &m) > swv_row(&[0.2, 0.2], &m));
    }

    #[test]
    fn pair_swv_picks_signed_device() {
        // Positive weight uses the positive crossbar's multiplier.
        let v = swv_row_pair(&[1.0], &[2.0], &[1.0]);
        assert!((v - 1.0).abs() < 1e-12); // |1·(1−2)| = 1
                                          // Negative weight uses the negative crossbar's multiplier.
        let v = swv_row_pair(&[-1.0], &[2.0], &[1.0]);
        assert_eq!(v, 0.0); // |−1·(1−1)| = 0
    }

    #[test]
    fn matrix_forms_match_row_forms() {
        let w = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]);
        let mult = Matrix::from_rows(&[vec![1.2, 0.9], vec![0.7, 1.1], vec![1.0, 1.0]]);
        let m = swv_matrix(&w, &mult).unwrap();
        assert_eq!(m.shape(), (2, 3));
        for p in 0..2 {
            for q in 0..3 {
                assert!((m[(p, q)] - swv_row(w.row(p), mult.row(q))).abs() < 1e-12);
            }
        }
        // Perfect physical row scores zero for every weight row.
        assert_eq!(m[(0, 2)], 0.0);
        assert_eq!(m[(1, 2)], 0.0);
    }

    #[test]
    fn shape_validation() {
        let w = Matrix::zeros(2, 3);
        let m = Matrix::zeros(4, 2);
        assert!(swv_matrix(&w, &m).is_err());
        let mp = Matrix::zeros(4, 3);
        let mn = Matrix::zeros(5, 3);
        assert!(swv_matrix_pair(&w, &mp, &mn).is_err());
    }
}
