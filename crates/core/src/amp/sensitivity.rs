//! Variation-sensitivity analysis — Eq. (11) of the paper.
//!
//! `∂y_j/∂e^{θ_ij} = x_i · w_ij`: the damage a device's variation can do
//! is proportional to the product of its input and its weight. A weight
//! *row* shares one input line, so its aggregate sensitivity is
//! `E[|x_i|] · Σ_j |w_ij|`.

use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;

/// Per-feature mean absolute input over a dataset.
pub fn mean_abs_inputs(data: &Dataset) -> Vec<f64> {
    let mut acc = vec![0.0; data.num_features()];
    for i in 0..data.len() {
        for (a, &v) in acc.iter_mut().zip(data.image(i)) {
            *a += v.abs();
        }
    }
    let n = data.len().max(1) as f64;
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// Sensitivity of every weight row: `s_p = x̄_p · Σ_j |w_pj|`.
///
/// # Panics
///
/// Panics if `mean_abs_input.len() != weights.rows()`.
pub fn row_sensitivity(weights: &Matrix, mean_abs_input: &[f64]) -> Vec<f64> {
    assert_eq!(
        mean_abs_input.len(),
        weights.rows(),
        "sensitivity: input length mismatch"
    );
    (0..weights.rows())
        .map(|p| {
            let row_l1: f64 = weights.row(p).iter().map(|w| w.abs()).sum();
            mean_abs_input[p] * row_l1
        })
        .collect()
}

/// Per-cell sensitivity `|x̄_i · w_ij|` (Eq. (11) element-wise), exposed
/// for analyses and benches.
///
/// # Panics
///
/// Panics if `mean_abs_input.len() != weights.rows()`.
pub fn cell_sensitivity(weights: &Matrix, mean_abs_input: &[f64]) -> Matrix {
    assert_eq!(
        mean_abs_input.len(),
        weights.rows(),
        "sensitivity: input length mismatch"
    );
    Matrix::from_fn(weights.rows(), weights.cols(), |i, j| {
        (mean_abs_input[i] * weights[(i, j)]).abs()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};

    #[test]
    fn mean_abs_inputs_matches_manual() {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 3).unwrap();
        let m = mean_abs_inputs(&d);
        let manual: f64 = (0..d.len()).map(|i| d.image(i)[10].abs()).sum::<f64>() / d.len() as f64;
        assert!((m[10] - manual).abs() < 1e-12);
    }

    #[test]
    fn row_sensitivity_orders_by_weight_and_input() {
        let w = Matrix::from_rows(&[
            vec![1.0, 1.0], // big weights
            vec![0.1, 0.1], // small weights
            vec![1.0, 1.0], // big weights but dead input
        ]);
        let xbar = vec![1.0, 1.0, 0.0];
        let s = row_sensitivity(&w, &xbar);
        assert!(s[0] > s[1]);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn cell_sensitivity_is_abs_product() {
        let w = Matrix::from_rows(&[vec![2.0, -3.0]]);
        let s = cell_sensitivity(&w, &[0.5]);
        assert_eq!(s[(0, 0)], 1.0);
        assert_eq!(s[(0, 1)], 1.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        let w = Matrix::zeros(3, 2);
        let _ = row_sensitivity(&w, &[1.0, 2.0]);
    }
}
