//! Redundant-row and defect handling for AMP — §4.2.2 / §5.3 of the
//! paper.
//!
//! With `p` extra physical rows, the greedy mapping can leave the worst
//! `p` rows unused entirely. Defective (stuck-at) cells are detected by
//! pre-testing as extreme multiplier estimates and can be excluded
//! explicitly by inflating their rows' SWV.

use vortex_linalg::Matrix;

use crate::{CoreError, Result};

/// Inflates the SWV of the given physical rows to infinity so the greedy
/// mapper will avoid them whenever redundancy allows.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if any row index is out of
/// range.
pub fn exclude_physical_rows(swv: &Matrix, rows: &[usize]) -> Result<Matrix> {
    let mut out = swv.clone();
    for &q in rows {
        if q >= swv.cols() {
            return Err(CoreError::InvalidParameter {
                name: "rows",
                requirement: "physical row indices must be in range",
            });
        }
        for p in 0..swv.rows() {
            out[(p, q)] = f64::INFINITY;
        }
    }
    Ok(out)
}

/// Physical rows whose estimated multipliers look defective: any cell's
/// `|ln(multiplier)|` beyond `theta_threshold` marks the row.
///
/// Pre-testing maps a stuck-at-HRS cell to a very small multiplier and a
/// stuck-at-LRS cell to a very large one, so both failure modes land here
/// (§4.2.2: "defective cells can be detected as memristors with large
/// variations").
pub fn defective_rows(multipliers: &Matrix, theta_threshold: f64) -> Vec<usize> {
    (0..multipliers.rows())
        .filter(|&q| {
            (0..multipliers.cols())
                .any(|j| multipliers[(q, j)].max(1e-300).ln().abs() > theta_threshold)
        })
        .collect()
}

/// Combined helper: physical rows flagged defective in *either* crossbar
/// of a differential pair.
pub fn defective_rows_pair(
    mult_pos: &Matrix,
    mult_neg: &Matrix,
    theta_threshold: f64,
) -> Vec<usize> {
    let mut rows = defective_rows(mult_pos, theta_threshold);
    for q in defective_rows(mult_neg, theta_threshold) {
        if !rows.contains(&q) {
            rows.push(q);
        }
    }
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amp::greedy::greedy_map;

    #[test]
    fn exclusion_inflates_columns() {
        let swv = Matrix::filled(2, 3, 1.0);
        let out = exclude_physical_rows(&swv, &[1]).unwrap();
        assert_eq!(out[(0, 0)], 1.0);
        assert!(out[(0, 1)].is_infinite());
        assert!(out[(1, 1)].is_infinite());
        assert!(exclude_physical_rows(&swv, &[7]).is_err());
    }

    #[test]
    fn excluded_rows_are_avoided_by_greedy() {
        let swv = Matrix::filled(2, 3, 1.0);
        let out = exclude_physical_rows(&swv, &[0]).unwrap();
        let mapping = greedy_map(&[1.0, 1.0], &out).unwrap();
        assert!(!mapping.assignment().contains(&0));
    }

    #[test]
    fn defective_rows_detects_extremes() {
        // Row 1 has a stuck-LRS-looking cell (multiplier 20 → θ̂ ≈ 3);
        // row 2 has a stuck-HRS-looking cell (multiplier 0.01 → θ̂ ≈ −4.6).
        let m = Matrix::from_rows(&[
            vec![1.1, 0.9],
            vec![20.0, 1.0],
            vec![1.0, 0.01],
            vec![0.8, 1.2],
        ]);
        let rows = defective_rows(&m, 2.0);
        assert_eq!(rows, vec![1, 2]);
        // Stricter threshold catches nothing.
        assert!(defective_rows(&m, 5.0).is_empty());
    }

    #[test]
    fn pair_union_is_sorted_and_deduplicated() {
        let a = Matrix::from_rows(&[vec![10.0], vec![1.0], vec![1.0]]);
        let b = Matrix::from_rows(&[vec![10.0], vec![1.0], vec![0.01]]);
        let rows = defective_rows_pair(&a, &b, 2.0);
        assert_eq!(rows, vec![0, 2]);
    }
}
