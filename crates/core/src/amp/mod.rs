//! Adaptive Mapping (AMP) — §4.2 of the paper.
//!
//! AMP is a hardware-side mitigation: after fabrication, pre-test every
//! device ([`vortex_xbar::pretest`]), rank weight rows by how much damage
//! their devices' variation can do ([`sensitivity`], Eq. (11)), then
//! greedily assign the most damage-prone weight rows to the physical rows
//! whose measured variation hurts them least ([`swv`], Eq. (12);
//! [`greedy`], Algorithm 1). Redundant rows and stuck-at defects are
//! handled by the same machinery ([`redundancy`]).

pub mod greedy;
pub mod redundancy;
pub mod sensitivity;
pub mod swv;

use vortex_linalg::Matrix;

use crate::{CoreError, Result};
use greedy::{greedy_map, RowMapping};

/// The output of AMP planning.
#[derive(Debug, Clone, PartialEq)]
pub struct AmpPlan {
    /// Weight-row → physical-row assignment.
    pub mapping: RowMapping,
    /// Residual effective variation (weighted log-std of the multipliers
    /// actually assigned to the weights) — the σ the VAT/AMP integration
    /// (§4.3) re-tunes against.
    pub effective_sigma: f64,
}

/// Plans an adaptive mapping for a differential pair.
///
/// * `weights` — the trained logical weight matrix (`m × c`).
/// * `mult_pos` / `mult_neg` — pre-tested conductance multipliers
///   (`e^θ̂`) of the positive and negative crossbars (`M × c`, `M ≥ m`).
/// * `mean_abs_input` — per-row mean |input| used by the sensitivity
///   ranking.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] on shape mismatches or
/// insufficient physical rows.
pub fn plan(
    weights: &Matrix,
    mult_pos: &Matrix,
    mult_neg: &Matrix,
    mean_abs_input: &[f64],
) -> Result<AmpPlan> {
    if mult_pos.shape() != mult_neg.shape() {
        return Err(CoreError::InvalidParameter {
            name: "multipliers",
            requirement: "positive and negative maps must have equal shapes",
        });
    }
    if mult_pos.cols() != weights.cols() {
        return Err(CoreError::InvalidParameter {
            name: "multipliers",
            requirement: "column count must match the weight matrix",
        });
    }
    if mean_abs_input.len() != weights.rows() {
        return Err(CoreError::InvalidParameter {
            name: "mean_abs_input",
            requirement: "length must match the weight-matrix row count",
        });
    }
    let _span = vortex_obs::span!("pipeline.amp_plan_seconds");
    let sens = sensitivity::row_sensitivity(weights, mean_abs_input);
    let swv = swv::swv_matrix_pair(weights, mult_pos, mult_neg)?;
    let mapping = greedy_map(&sens, &swv)?;
    let effective_sigma = effective_sigma(weights, mult_pos, mult_neg, &mapping);
    Ok(AmpPlan {
        mapping,
        effective_sigma,
    })
}

/// Weighted residual variation after mapping: the |w|-weighted RMS of the
/// assigned cells' log-multipliers.
pub fn effective_sigma(
    weights: &Matrix,
    mult_pos: &Matrix,
    mult_neg: &Matrix,
    mapping: &RowMapping,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for p in 0..weights.rows() {
        let q = mapping.physical_row(p);
        for j in 0..weights.cols() {
            let w = weights[(p, j)];
            let mult = if w >= 0.0 {
                mult_pos[(q, j)]
            } else {
                mult_neg[(q, j)]
            };
            let theta = mult.max(1e-12).ln();
            let weight = w.abs();
            num += weight * theta * theta;
            den += weight;
        }
    }
    if den > 0.0 {
        (num / den).sqrt()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_linalg::rng::Xoshiro256PlusPlus;

    fn multipliers(rows: usize, cols: usize, sigma: f64, seed: u64) -> Matrix {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            (vortex_linalg::distributions::standard_normal(&mut rng) * sigma).exp()
        })
    }

    #[test]
    fn plan_shapes_and_validity() {
        let w = Matrix::from_fn(6, 3, |i, j| (i as f64 - 2.5) * 0.2 + j as f64 * 0.1);
        let mp = multipliers(8, 3, 0.5, 1);
        let mn = multipliers(8, 3, 0.5, 2);
        let x_bar = vec![0.5; 6];
        let plan = plan(&w, &mp, &mn, &x_bar).unwrap();
        assert_eq!(plan.mapping.logical_rows(), 6);
        assert_eq!(plan.mapping.physical_rows(), 8);
        assert!(plan.effective_sigma >= 0.0);
    }

    #[test]
    fn plan_validates_shapes() {
        let w = Matrix::zeros(6, 3);
        let mp = multipliers(8, 3, 0.5, 1);
        let mn = multipliers(7, 3, 0.5, 2);
        assert!(plan(&w, &mp, &mn, &[0.5; 6]).is_err());
        let mn = multipliers(8, 4, 0.5, 2);
        assert!(plan(&w, &mp, &mn, &[0.5; 6]).is_err());
        let mn = multipliers(8, 3, 0.5, 2);
        assert!(plan(&w, &mp, &mn, &[0.5; 5]).is_err());
    }

    #[test]
    fn mapping_reduces_effective_sigma_vs_identity() {
        // With redundancy, the greedy mapping should leave less weighted
        // variation on the weights than the identity mapping.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(33);
        let w = Matrix::from_fn(10, 4, |_, _| {
            vortex_linalg::distributions::standard_normal(&mut rng)
        });
        let mp = multipliers(16, 4, 0.8, 4);
        let mn = multipliers(16, 4, 0.8, 5);
        let x_bar = vec![0.5; 10];
        let planned = plan(&w, &mp, &mn, &x_bar).unwrap();
        let identity_sigma = effective_sigma(&w, &mp, &mn, &RowMapping::identity_into(10, 16));
        assert!(
            planned.effective_sigma < identity_sigma,
            "planned {} identity {}",
            planned.effective_sigma,
            identity_sigma
        );
    }

    #[test]
    fn effective_sigma_zero_for_unit_multipliers() {
        let w = Matrix::filled(4, 2, 1.0);
        let ones = Matrix::filled(4, 2, 1.0);
        let s = effective_sigma(&w, &ones, &ones, &RowMapping::identity(4));
        assert!(s.abs() < 1e-9);
    }
}
