//! The greedy mapping algorithm — Algorithm 1 of the paper.
//!
//! Weight rows are visited in order of decreasing variation sensitivity;
//! each takes the still-unassigned physical row with the smallest SWV
//! against it. With `M > m` physical rows (redundancy), the `M − m` worst
//! rows are simply never used.

use serde::{Deserialize, Serialize};
use vortex_linalg::Matrix;

use crate::{CoreError, Result};

/// A logical-row → physical-row assignment.
///
/// `assignment[p]` is the physical crossbar row that carries logical
/// weight row `p`. Physical rows not assigned to any weight row stay at
/// HRS and receive zero input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowMapping {
    assignment: Vec<usize>,
    physical_rows: usize,
}

impl RowMapping {
    /// The identity mapping on `n` rows (no redundancy, no remapping).
    pub fn identity(n: usize) -> Self {
        Self {
            assignment: (0..n).collect(),
            physical_rows: n,
        }
    }

    /// Identity assignment of `n` logical rows into the first `n` of
    /// `physical_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `physical_rows < n`.
    pub fn identity_into(n: usize, physical_rows: usize) -> Self {
        assert!(physical_rows >= n, "need at least {n} physical rows");
        Self {
            assignment: (0..n).collect(),
            physical_rows,
        }
    }

    /// Builds a mapping from an explicit assignment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the assignment is not
    /// injective or exceeds `physical_rows`.
    pub fn from_assignment(assignment: Vec<usize>, physical_rows: usize) -> Result<Self> {
        let mut seen = vec![false; physical_rows];
        for &q in &assignment {
            if q >= physical_rows {
                return Err(CoreError::InvalidParameter {
                    name: "assignment",
                    requirement: "all physical rows must be in range",
                });
            }
            if seen[q] {
                return Err(CoreError::InvalidParameter {
                    name: "assignment",
                    requirement: "physical rows must be assigned at most once",
                });
            }
            seen[q] = true;
        }
        Ok(Self {
            assignment,
            physical_rows,
        })
    }

    /// Number of logical (weight) rows.
    pub fn logical_rows(&self) -> usize {
        self.assignment.len()
    }

    /// Number of physical (crossbar) rows.
    pub fn physical_rows(&self) -> usize {
        self.physical_rows
    }

    /// Redundant rows (`physical − logical`).
    pub fn redundant_rows(&self) -> usize {
        self.physical_rows - self.assignment.len()
    }

    /// The physical row carrying logical row `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn physical_row(&self, p: usize) -> usize {
        self.assignment[p]
    }

    /// The full assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Expands a logical `m × c` matrix into the physical `M × c` layout;
    /// unassigned physical rows are filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `logical.rows() != logical_rows()`.
    pub fn apply_to_rows(&self, logical: &Matrix, fill: f64) -> Matrix {
        assert_eq!(
            logical.rows(),
            self.logical_rows(),
            "apply_to_rows: row mismatch"
        );
        let mut out = Matrix::filled(self.physical_rows, logical.cols(), fill);
        for (p, &q) in self.assignment.iter().enumerate() {
            out.row_mut(q).copy_from_slice(logical.row(p));
        }
        out
    }

    /// Routes a logical input vector onto the physical rows (unassigned
    /// rows receive zero drive).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != logical_rows()`.
    pub fn route_input(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.logical_rows(), "route_input: length mismatch");
        let mut out = vec![0.0; self.physical_rows];
        for (p, &q) in self.assignment.iter().enumerate() {
            out[q] = x[p];
        }
        out
    }
}

/// Algorithm 1: greedy sensitivity-ordered minimum-SWV assignment.
///
/// * `sensitivity[p]` — damage potential of logical row `p` (Eq. (11)).
/// * `swv[(p, q)]` — cost of putting logical row `p` on physical row `q`
///   (Eq. (12)); shape `m × M` with `M ≥ m`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if dimensions disagree or
/// there are fewer physical than logical rows.
pub fn greedy_map(sensitivity: &[f64], swv: &Matrix) -> Result<RowMapping> {
    let m = swv.rows();
    let big_m = swv.cols();
    if sensitivity.len() != m {
        return Err(CoreError::InvalidParameter {
            name: "sensitivity",
            requirement: "length must match the SWV row count",
        });
    }
    if big_m < m {
        return Err(CoreError::InvalidParameter {
            name: "swv",
            requirement: "needs at least as many physical as logical rows",
        });
    }
    // Visit logical rows by decreasing sensitivity (ties by index for
    // determinism).
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        sensitivity[b]
            .partial_cmp(&sensitivity[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut taken = vec![false; big_m];
    let mut assignment = vec![usize::MAX; m];
    for &p in &order {
        let mut best_q = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for q in 0..big_m {
            if taken[q] {
                continue;
            }
            let cost = swv[(p, q)];
            if cost < best_cost {
                best_cost = cost;
                best_q = q;
            }
        }
        debug_assert!(best_q != usize::MAX);
        taken[best_q] = true;
        assignment[p] = best_q;
    }
    RowMapping::from_assignment(assignment, big_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_basics() {
        let m = RowMapping::identity(4);
        assert_eq!(m.logical_rows(), 4);
        assert_eq!(m.physical_rows(), 4);
        assert_eq!(m.redundant_rows(), 0);
        assert_eq!(m.physical_row(2), 2);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.route_input(&x), x.to_vec());
    }

    #[test]
    fn from_assignment_validates() {
        assert!(RowMapping::from_assignment(vec![0, 0], 3).is_err());
        assert!(RowMapping::from_assignment(vec![0, 5], 3).is_err());
        assert!(RowMapping::from_assignment(vec![2, 0], 3).is_ok());
    }

    #[test]
    fn apply_to_rows_permutes_and_fills() {
        let mapping = RowMapping::from_assignment(vec![2, 0], 3).unwrap();
        let logical = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let physical = mapping.apply_to_rows(&logical, -9.0);
        assert_eq!(physical.row(2), &[1.0, 1.0]); // logical 0 → physical 2
        assert_eq!(physical.row(0), &[2.0, 2.0]); // logical 1 → physical 0
        assert_eq!(physical.row(1), &[-9.0, -9.0]); // unused
    }

    #[test]
    fn route_input_is_consistent_with_apply() {
        // The permutation invariance: x_logical·W_logical =
        // x_physical·W_physical.
        let mapping = RowMapping::from_assignment(vec![3, 1, 0], 4).unwrap();
        let w = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let x = [0.5, -1.0, 2.0];
        let y_logical = w.vecmat(&x);
        let w_phys = mapping.apply_to_rows(&w, 0.0);
        let x_phys = mapping.route_input(&x);
        let y_physical = w_phys.vecmat(&x_phys);
        for (a, b) in y_logical.iter().zip(&y_physical) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_assigns_best_row_to_most_sensitive() {
        // Logical row 1 is most sensitive; physical row 2 is cleanest.
        let sensitivity = [1.0, 10.0];
        let swv = Matrix::from_rows(&[
            vec![0.5, 0.4, 0.3], // costs for logical 0
            vec![0.9, 0.8, 0.1], // costs for logical 1
        ]);
        let mapping = greedy_map(&sensitivity, &swv).unwrap();
        assert_eq!(mapping.physical_row(1), 2); // sensitive row got the best
        assert_eq!(mapping.physical_row(0), 1); // next best remaining
        assert_eq!(mapping.redundant_rows(), 1); // row 0 unused
    }

    #[test]
    fn greedy_requires_enough_physical_rows() {
        let swv = Matrix::zeros(3, 2);
        assert!(greedy_map(&[1.0, 2.0, 3.0], &swv).is_err());
        let swv = Matrix::zeros(2, 2);
        assert!(greedy_map(&[1.0], &swv).is_err());
    }

    #[test]
    fn greedy_is_deterministic_under_ties() {
        let swv = Matrix::filled(3, 3, 1.0);
        let a = greedy_map(&[1.0, 1.0, 1.0], &swv).unwrap();
        let b = greedy_map(&[1.0, 1.0, 1.0], &swv).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_avoids_defective_rows_given_redundancy() {
        // Physical row 1 is catastrophically bad (e.g. stuck cell): with
        // one redundant row it must remain unused.
        let sensitivity = [1.0, 2.0];
        let swv = Matrix::from_rows(&[vec![0.2, 100.0, 0.3], vec![0.1, 100.0, 0.2]]);
        let mapping = greedy_map(&sensitivity, &swv).unwrap();
        assert!(!mapping.assignment().contains(&1), "defective row used");
    }
}
