//! Variation-Aware Training (VAT) — §4.1 of the paper.
//!
//! Starting from the conventional per-column hinge constraints (Eq. (3)),
//! VAT linearizes the lognormal device variation `e^θ ≈ α₀ + α₁·θ`
//! (Eq. (5)), splits the constraint into the conventional term plus a
//! "penalty of variations" (Eq. (6)), and replaces the random penalty by
//! its Chi-square-confidence upper bound `ρ·‖x⁽ⁱ⁾ ∘ W_r‖₂` (Eq. (7)).
//! A scale knob `γ ∈ [0, 1]` interpolates between conventional GDT
//! (`γ = 0`) and the full estimated penalty (`γ = 1`) (Eq. (10)).
//!
//! The optimization is solved with the same epoch-shuffled subgradient
//! descent as [`vortex_nn::gdt`]; the extra penalty contributes the
//! subgradient `γ·ρ·(x ∘ x ∘ w)/‖x ∘ w‖₂` whenever the padded margin is
//! violated.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::{vector, Matrix};
use vortex_nn::dataset::Dataset;

use crate::rho::RhoConfig;
use crate::{CoreError, Result};

/// VAT trainer: hinge subgradient descent with the variation penalty.
///
/// # Example
///
/// ```
/// use vortex_core::vat::VatTrainer;
/// use vortex_nn::dataset::{DatasetConfig, SynthDigits};
///
/// # fn main() -> Result<(), vortex_core::CoreError> {
/// let data = SynthDigits::generate(&DatasetConfig::tiny(), 1)?;
/// let trainer = VatTrainer {
///     epochs: 5,
///     gamma: 0.3,   // penalty scale of Eq. (10)
///     sigma: 0.6,   // the device variation to guard against
///     ..Default::default()
/// };
/// let weights = trainer.train(&data)?;
/// assert_eq!(weights.shape(), (data.num_features(), 10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VatTrainer {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization coefficient.
    pub l2: f64,
    /// Target margin (1 in the paper's constraints).
    pub margin: f64,
    /// Penalty scale γ ∈ [0, 1] (Eq. (10)); 0 recovers conventional GDT.
    pub gamma: f64,
    /// Device-variation log-std σ the penalty is computed against.
    pub sigma: f64,
    /// Linearization coefficient α₀ of `e^θ ≈ α₀ + α₁θ` (1 in the paper).
    pub alpha0: f64,
    /// Linearization coefficient α₁ (1 in the paper).
    pub alpha1: f64,
    /// Chi-square confidence for ρ.
    pub rho_config: RhoConfig,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for VatTrainer {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.05,
            l2: 1e-4,
            margin: 1.0,
            gamma: 0.2,
            sigma: 0.6,
            alpha0: 1.0,
            alpha1: 1.0,
            rho_config: RhoConfig::default(),
            seed: 0xB01D,
        }
    }
}

impl VatTrainer {
    /// A copy with a different γ (used by the self-tuning scan).
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// A copy with a different σ (used by the AMP integration, §4.3).
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(CoreError::InvalidParameter {
                name: "epochs",
                requirement: "must be positive",
            });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "learning_rate",
                requirement: "must be finite and positive",
            });
        }
        if !(self.l2.is_finite() && self.l2 >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "l2",
                requirement: "must be finite and non-negative",
            });
        }
        if !((0.0..=1.0).contains(&self.gamma)) {
            return Err(CoreError::InvalidParameter {
                name: "gamma",
                requirement: "must lie in [0, 1]",
            });
        }
        if !(self.sigma.is_finite() && self.sigma >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.margin.is_finite() && self.margin > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "margin",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// The effective penalty coefficient `κ·γ·ρ_rms·|α₁|` for `n` input
    /// rows, using the RMS-normalized confidence radius
    /// ([`RhoConfig::rho_rms`] — see there for the calibration
    /// rationale). The fixed factor `κ = 2` aligns the γ axis with the
    /// paper's: under it the with-variation test-rate peak lands in the
    /// paper's 0.2–0.5 band rather than at the top of the sweep.
    ///
    /// # Errors
    ///
    /// Propagates ρ computation errors.
    pub fn penalty_coefficient(&self, n: usize) -> Result<f64> {
        const KAPPA: f64 = 2.0;
        let rho = self.rho_config.rho_rms(self.sigma, n)?;
        Ok(KAPPA * self.gamma * rho * self.alpha1.abs())
    }

    /// Trains all columns, returning the `features × classes` weight
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for invalid configuration
    /// or an empty dataset.
    pub fn train(&self, data: &Dataset) -> Result<Matrix> {
        let _span = vortex_obs::span!("pipeline.vat_train_seconds");
        self.validate()?;
        if data.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "data",
                requirement: "must be non-empty",
            });
        }
        let n = data.num_features();
        let m = data.num_classes();
        let mut w = Matrix::zeros(n, m);
        for class in 0..m {
            let col = self.train_column(data, class as u8)?;
            w.set_col(class, &col);
        }
        Ok(w)
    }

    /// Trains one column with "1 vs. all" targets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::train`].
    pub fn train_column(&self, data: &Dataset, class: u8) -> Result<Vec<f64>> {
        self.validate()?;
        if data.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "data",
                requirement: "must be non-empty",
            });
        }
        let n = data.num_features();
        let coeff = self.penalty_coefficient(n)?;
        let mut w = vec![0.0_f64; n];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed ^ ((class as u64) << 32));
        let mut step_count = 0usize;

        for _epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                step_count += 1;
                let alpha = self.learning_rate / (1.0 + step_count as f64 * self.l2.max(1e-6));
                let x = data.image(i);
                let target = if data.label(i) == class { 1.0 } else { -1.0 };
                let score = vector::dot(x, &w);
                // Penalty term: γ·ρ·‖x ∘ w‖₂ (Eq. (10) with t = |V|).
                let xw = vector::hadamard(x, &w);
                let penalty_norm = vector::norm2(&xw);
                let violated = self.alpha0 * target * score - coeff * penalty_norm < self.margin;
                if self.l2 > 0.0 {
                    vector::scale(1.0 - alpha * self.l2, &mut w);
                }
                if violated {
                    // Hinge part: +α·α₀·ŷ·x.
                    vector::axpy(alpha * self.alpha0 * target, x, &mut w);
                    // Penalty part: −α·coeff·(x∘x∘w)/‖x∘w‖₂.
                    if coeff > 0.0 && penalty_norm > 1e-12 {
                        let scale = alpha * coeff / penalty_norm;
                        for ((wq, &xq), &xwq) in w.iter_mut().zip(x).zip(&xw) {
                            *wq -= scale * xq * xwq;
                        }
                    }
                }
            }
        }
        Ok(w)
    }
}

/// Injects one draw of lognormal variation into a weight matrix:
/// `w'_ij = w_ij · e^{θ_ij}`, `θ ~ N(0, σ²)` — the validation step of the
/// self-tuning loop (Fig. 5) and the weight-domain abstraction of an
/// open-loop programmed crossbar.
pub fn inject_variation(w: &Matrix, sigma: f64, rng: &mut Xoshiro256PlusPlus) -> Matrix {
    if sigma == 0.0 {
        return w.clone();
    }
    w.map(|v| {
        let theta = vortex_linalg::distributions::standard_normal(rng) * sigma;
        v * theta.exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::metrics::accuracy_of_weights;

    fn data() -> Dataset {
        SynthDigits::generate(&DatasetConfig::tiny(), 71).unwrap()
    }

    fn fast(gamma: f64, sigma: f64) -> VatTrainer {
        VatTrainer {
            epochs: 12,
            gamma,
            sigma,
            ..Default::default()
        }
    }

    #[test]
    fn gamma_zero_matches_plain_hinge_closely() {
        // With γ = 0 the penalty vanishes; VAT reduces to conventional GDT
        // (same loss, same kind of optimizer).
        let d = data();
        let w = fast(0.0, 0.6).train(&d).unwrap();
        let acc = accuracy_of_weights(&w, &d);
        assert!(acc > 0.6, "γ=0 training accuracy {acc}");
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let d = data();
        let mut t = fast(0.2, 0.6);
        t.gamma = 1.5;
        assert!(t.train(&d).is_err());
        t = fast(0.2, 0.6);
        t.sigma = -0.1;
        assert!(t.train(&d).is_err());
        t = fast(0.2, 0.6);
        t.epochs = 0;
        assert!(t.train(&d).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let d = data();
        let t = fast(0.3, 0.6);
        assert_eq!(t.train(&d).unwrap(), t.train(&d).unwrap());
    }

    #[test]
    fn penalty_lowers_training_rate() {
        // §4.1.2: "such a method applies a tighter constraint … potentially
        // lower training rate".
        let d = data();
        let w0 = fast(0.0, 0.8).train(&d).unwrap();
        let w1 = fast(1.0, 0.8).train(&d).unwrap();
        let a0 = accuracy_of_weights(&w0, &d);
        let a1 = accuracy_of_weights(&w1, &d);
        assert!(
            a1 <= a0 + 0.02,
            "full penalty should not fit better: γ=0 → {a0}, γ=1 → {a1}"
        );
    }

    #[test]
    fn vat_improves_robustness_under_variation() {
        // The core claim: at moderate γ the *with-variation* accuracy beats
        // conventional training's, even if the clean fit is slightly worse.
        let d = data();
        let sigma = 0.8;
        let w_plain = fast(0.0, sigma).train(&d).unwrap();
        let w_vat = fast(0.35, sigma).train(&d).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let eval = |w: &Matrix, rng: &mut Xoshiro256PlusPlus| {
            let draws = 12;
            (0..draws)
                .map(|_| accuracy_of_weights(&inject_variation(w, sigma, rng), &d))
                .sum::<f64>()
                / draws as f64
        };
        let robust_plain = eval(&w_plain, &mut rng);
        let robust_vat = eval(&w_vat, &mut rng);
        assert!(
            robust_vat > robust_plain - 0.01,
            "VAT should not be less robust: plain {robust_plain} vat {robust_vat}"
        );
    }

    #[test]
    fn penalty_coefficient_scales() {
        // RMS normalization: the coefficient approaches γ·σ from above as
        // n grows (the finite-n Chi-square tail shrinks relatively).
        let t = fast(0.5, 0.6);
        let c100 = t.penalty_coefficient(100).unwrap();
        let c784 = t.penalty_coefficient(784).unwrap();
        let limit = 2.0 * 0.5 * 0.6; // κ·γ·σ
        assert!(c100 > c784, "finite-n tail: {c100} vs {c784}");
        assert!(
            c784 > limit && c784 < limit * 1.2,
            "c784 {c784} vs κγσ {limit}"
        );
        let t0 = fast(0.0, 0.6);
        assert_eq!(t0.penalty_coefficient(100).unwrap(), 0.0);
    }

    #[test]
    fn inject_variation_statistics() {
        let w = Matrix::filled(50, 20, 1.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let wv = inject_variation(&w, 0.4, &mut rng);
        let logs: Vec<f64> = wv.as_slice().iter().map(|v| v.ln()).collect();
        let s = vortex_linalg::stats::std_dev(&logs);
        assert!((s - 0.4).abs() < 0.03, "log-std {s}");
        // σ = 0 is the identity.
        assert_eq!(inject_variation(&w, 0.0, &mut rng), w);
    }

    #[test]
    fn inject_variation_preserves_sign() {
        let w = Matrix::from_fn(10, 4, |i, j| if (i + j) % 2 == 0 { 1.0 } else { -1.0 });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let wv = inject_variation(&w, 0.8, &mut rng);
        for (a, b) in w.as_slice().iter().zip(wv.as_slice()) {
            assert_eq!(a.signum(), b.signum());
        }
    }
}
