//! The single-column current-matching experiment of Fig. 2 / §3.1.
//!
//! A column of `n` memristors is trained so that with every input wire at
//! 1 V the column outputs a target current (1 mA for the paper's 100
//! devices at nominal 10 kΩ … 1 MΩ). OLD pre-calculates one conductance
//! target per device and programs blind; CLD senses the output current and
//! iterates. The reported statistic is the relative discrepancy
//! `|I − I_target| / I_target` over Monte-Carlo variation draws.

use serde::{Deserialize, Serialize};
use vortex_device::{DeviceParams, VariationModel};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_xbar::sensing::Adc;

use crate::{CoreError, Result};

/// Configuration of the column experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnExperiment {
    /// Number of memristors in the column (100 in the paper).
    pub n: usize,
    /// Input voltage on every wire (1 V in the paper).
    pub v_in: f64,
    /// Target output current in amperes (1 mA in the paper).
    pub i_target: f64,
    /// Device corner.
    pub device: DeviceParams,
    /// CLD iteration budget.
    pub max_iterations: usize,
    /// CLD sensing ADC (None = ideal sensing).
    pub sense_bits: Option<u32>,
}

impl Default for ColumnExperiment {
    fn default() -> Self {
        Self {
            n: 100,
            v_in: 1.0,
            i_target: 1e-3,
            device: DeviceParams::default(),
            max_iterations: 100,
            sense_bits: Some(8),
        }
    }
}

impl ColumnExperiment {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for degenerate settings.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || self.max_iterations == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n/max_iterations",
                requirement: "must be positive",
            });
        }
        if !(self.v_in > 0.0 && self.i_target > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "v_in/i_target",
                requirement: "must be positive",
            });
        }
        // The per-device conductance must be representable.
        let g_each = self.i_target / (self.v_in * self.n as f64);
        if g_each < self.device.g_off() || g_each > self.device.g_on() {
            return Err(CoreError::InvalidParameter {
                name: "i_target",
                requirement: "per-device conductance must lie within the device window",
            });
        }
        Ok(())
    }

    /// Relative output discrepancy of one OLD-trained column.
    ///
    /// OLD splits the target current uniformly: each device is programmed
    /// (blind) to `g = I/(V·n)` and realizes `g·e^θ`.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn old_discrepancy(
        &self,
        variation: &VariationModel,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<f64> {
        self.validate()?;
        let g_each = self.i_target / (self.v_in * self.n as f64);
        let mut current = 0.0;
        for _ in 0..self.n {
            let theta = variation.sample_theta(rng);
            let eps = variation.sample_switching(rng);
            current += self.v_in * VariationModel::apply(g_each, theta + eps);
        }
        Ok((current - self.i_target).abs() / self.i_target)
    }

    /// Relative output discrepancy of one CLD-trained column.
    ///
    /// CLD iterates: sense the (quantized) output current, spread the
    /// error over the devices as conductance corrections, apply each
    /// correction through the device's own `e^θ` (the closed loop senses
    /// the *outcome*, so the iteration converges regardless), stop when
    /// the sensed output matches the target or the budget runs out.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn cld_discrepancy(
        &self,
        variation: &VariationModel,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<f64> {
        self.validate()?;
        let g_each = self.i_target / (self.v_in * self.n as f64);
        let adc = match self.sense_bits {
            Some(bits) => Some(Adc::new(bits, 2.0 * self.i_target).map_err(CoreError::Xbar)?),
            None => None,
        };
        // Fabrication: per-device multiplicative realization.
        let multipliers: Vec<f64> = (0..self.n)
            .map(|_| variation.sample_theta(rng).exp())
            .collect();
        // Start from a blind OLD-style programming.
        let mut g_nominal = vec![g_each; self.n];
        let realized = |g_nom: &[f64]| -> f64 {
            g_nom
                .iter()
                .zip(&multipliers)
                .map(|(&g, &m)| self.v_in * (g * m).clamp(self.device.g_off(), self.device.g_on()))
                .sum()
        };
        for _ in 0..self.max_iterations {
            let current = realized(&g_nominal);
            let sensed = match &adc {
                Some(adc) => adc.quantize(current),
                None => current,
            };
            let err = self.i_target - sensed;
            if err.abs() < 1e-12 {
                break;
            }
            // Spread the correction uniformly over the devices (in
            // *intended* conductance; each device realizes its own e^θ).
            let dg = err / (self.v_in * self.n as f64);
            for g in &mut g_nominal {
                *g = (*g + dg).max(0.0);
            }
        }
        let final_current = realized(&g_nominal);
        Ok((final_current - self.i_target).abs() / self.i_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(2015)
    }

    #[test]
    fn validation() {
        let c = ColumnExperiment {
            n: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ColumnExperiment {
            i_target: -1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        // 1 A from 100 devices at ≤ 100 µS each is impossible.
        let c = ColumnExperiment {
            i_target: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(ColumnExperiment::default().validate().is_ok());
    }

    #[test]
    fn no_variation_means_no_discrepancy() {
        let c = ColumnExperiment::default();
        let v = VariationModel::none();
        let mut r = rng();
        assert!(c.old_discrepancy(&v, &mut r).unwrap() < 1e-9);
        assert!(c.cld_discrepancy(&v, &mut r).unwrap() < 0.02);
    }

    #[test]
    fn old_discrepancy_grows_with_sigma() {
        let c = ColumnExperiment::default();
        let mut r = rng();
        let mean_disc = |sigma: f64, r: &mut Xoshiro256PlusPlus| {
            let v = VariationModel::parametric(sigma).unwrap();
            (0..200)
                .map(|_| c.old_discrepancy(&v, r).unwrap())
                .sum::<f64>()
                / 200.0
        };
        let d_small = mean_disc(0.2, &mut r);
        let d_large = mean_disc(0.8, &mut r);
        assert!(
            d_large > 2.0 * d_small,
            "σ=0.8 ({d_large}) should far exceed σ=0.2 ({d_small})"
        );
    }

    #[test]
    fn cld_stays_flat_in_sigma() {
        // Fig. 2: CLD's discrepancy is essentially σ-independent.
        let c = ColumnExperiment::default();
        let mut r = rng();
        let mean_disc = |sigma: f64, r: &mut Xoshiro256PlusPlus| {
            let v = VariationModel::parametric(sigma).unwrap();
            (0..100)
                .map(|_| c.cld_discrepancy(&v, r).unwrap())
                .sum::<f64>()
                / 100.0
        };
        let d_small = mean_disc(0.2, &mut r);
        let d_large = mean_disc(0.8, &mut r);
        assert!(
            d_large < d_small + 0.02,
            "CLD: σ=0.2 {d_small} σ=0.8 {d_large}"
        );
        assert!(d_large < 0.05, "CLD discrepancy must stay small: {d_large}");
    }

    #[test]
    fn cld_beats_old_under_variation() {
        let c = ColumnExperiment::default();
        let v = VariationModel::parametric(0.6).unwrap();
        let mut r = rng();
        let old: f64 = (0..100)
            .map(|_| c.old_discrepancy(&v, &mut r).unwrap())
            .sum::<f64>()
            / 100.0;
        let cld: f64 = (0..100)
            .map(|_| c.cld_discrepancy(&v, &mut r).unwrap())
            .sum::<f64>()
            / 100.0;
        assert!(cld < old, "CLD {cld} must beat OLD {old}");
    }

    #[test]
    fn coarser_sensing_limits_cld_floor() {
        let v = VariationModel::parametric(0.4).unwrap();
        let fine = ColumnExperiment {
            sense_bits: Some(12),
            ..Default::default()
        };
        let coarse = ColumnExperiment {
            sense_bits: Some(3),
            ..Default::default()
        };
        let mut r = rng();
        let mean = |c: &ColumnExperiment, r: &mut Xoshiro256PlusPlus| {
            (0..100)
                .map(|_| c.cld_discrepancy(&v, r).unwrap())
                .sum::<f64>()
                / 100.0
        };
        let f = mean(&fine, &mut r);
        let co = mean(&coarse, &mut r);
        assert!(
            f <= co + 1e-6,
            "finer sensing should do no worse: {f} vs {co}"
        );
    }
}
