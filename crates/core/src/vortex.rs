//! The integrated Vortex pipeline — VAT + AMP (§4.3 of the paper).
//!
//! Per experiment run:
//!
//! 1. **VAT with self-tuned γ** trains robust weights in software
//!    ([`crate::vat`], [`crate::tuning`]).
//! 2. Per fabricated chip (Monte-Carlo draw):
//!    - **Pre-test** every device of both crossbars through the
//!      configured ADC ([`vortex_xbar::pretest`]);
//!    - flag defective physical rows and **greedily map** weight rows to
//!      physical rows by sensitivity and SWV ([`crate::amp`]);
//!    - optionally **re-tune** VAT against the reduced effective σ the
//!      mapping leaves behind (the §4.3 stacking);
//!    - **program** the pair open-loop (with IR-drop compensation when
//!      wires are modeled) and measure the hardware **test rate**.
//!
//! The `use_vat` / `use_amp` switches expose the ablations of Fig. 9.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::executor::{run_trials, Parallelism};
use vortex_nn::metrics::{accuracy_of_weights, Rates};
use vortex_xbar::irdrop::ProgramVoltageMap;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};
use vortex_xbar::pretest::{pretest, PretestConfig};
use vortex_xbar::program::{program_with_protocol, ProgramOptions};
use vortex_xbar::sensing::Adc;

use crate::amp::greedy::{greedy_map, RowMapping};
use crate::amp::redundancy::{defective_rows_pair, exclude_physical_rows};
use crate::amp::{sensitivity, swv};
use crate::pipeline::{score_pair, HardwareEnv};
use crate::tuning::{GammaPoint, SelfTuner};
use crate::vat::VatTrainer;
use crate::{CoreError, Result};

/// Configuration of the integrated pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VortexConfig {
    /// Base VAT parameters (γ is overridden by the tuner; σ by the
    /// environment).
    pub vat: VatTrainer,
    /// The γ self-tuner.
    pub tuner: SelfTuner,
    /// Extra physical rows available to AMP (the paper's `p`, §5.3).
    pub redundant_rows: usize,
    /// Pre-test ADC resolution in bits (§5.2 sweeps this).
    pub pretest_bits: u32,
    /// Pre-test program/sense repetitions.
    pub pretest_repeats: usize,
    /// |θ̂| beyond which a pre-tested row is treated as defective.
    pub defect_theta_threshold: f64,
    /// Whether to re-tune VAT against the post-AMP effective σ (§4.3).
    pub retune_after_amp: bool,
    /// Monte-Carlo fabrication draws.
    pub mc_draws: usize,
    /// Enable the VAT component (off = plain GDT weights).
    pub use_vat: bool,
    /// Enable the AMP component (off = identity mapping).
    pub use_amp: bool,
    /// Worker pool for the per-chip Monte-Carlo fan-out (and, via
    /// [`SelfTuner::parallelism`], the γ scan). Results are bit-identical
    /// for every setting; only wall-clock time changes.
    pub parallelism: Parallelism,
}

impl Default for VortexConfig {
    fn default() -> Self {
        Self {
            vat: VatTrainer::default(),
            tuner: SelfTuner::default(),
            redundant_rows: 0,
            pretest_bits: 6,
            pretest_repeats: 3,
            defect_theta_threshold: 2.5,
            retune_after_amp: false,
            mc_draws: 5,
            use_vat: true,
            use_amp: true,
            parallelism: Parallelism::Auto,
        }
    }
}

impl VortexConfig {
    /// A fast configuration for tests: few epochs, coarse γ grid, few
    /// draws.
    pub fn fast() -> Self {
        Self {
            vat: VatTrainer {
                epochs: 8,
                ..Default::default()
            },
            tuner: SelfTuner::coarse(),
            pretest_repeats: 1,
            mc_draws: 2,
            ..Default::default()
        }
    }
}

/// Outcome of a Vortex run.
#[derive(Debug, Clone, PartialEq)]
pub struct VortexOutcome {
    /// Training rate of the tuned weights and mean hardware test rate.
    pub rates: Rates,
    /// The trained (software) weights.
    pub weights: Matrix,
    /// The γ the self-tuner selected.
    pub best_gamma: f64,
    /// The tuning curve (data behind Fig. 4 / Fig. 7).
    pub tuning_curve: Vec<GammaPoint>,
    /// Per-draw hardware test rates.
    pub per_draw: Vec<f64>,
    /// Mean post-AMP effective σ over draws (equals the raw σ without
    /// AMP).
    pub effective_sigma_mean: f64,
}

/// The integrated Vortex pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct VortexPipeline {
    config: VortexConfig,
}

impl VortexPipeline {
    /// Creates the pipeline with the given configuration.
    pub fn new(config: VortexConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &VortexConfig {
        &self.config
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// Propagates training, pre-test, mapping, programming and readout
    /// errors.
    pub fn run(
        &self,
        train: &Dataset,
        test: &Dataset,
        env: &HardwareEnv,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<VortexOutcome> {
        let _span = vortex_obs::span!("pipeline.vortex_seconds");
        let cfg = &self.config;
        let sigma = env.variation.sigma();
        let base_vat = cfg.vat.with_sigma(sigma);

        // 1. Software training (VAT + self-tuning, or plain GDT-equivalent).
        let (weights, best_gamma, tuning_curve) = if cfg.use_vat && sigma > 0.0 {
            let outcome = cfg.tuner.tune(&base_vat, train)?;
            (outcome.weights, outcome.best_gamma, outcome.curve)
        } else {
            let w = base_vat.with_gamma(0.0).train(train)?;
            (w, 0.0, Vec::new())
        };
        let training_rate = accuracy_of_weights(&weights, train);

        // 2. Per-chip mapping, programming and scoring.
        let n_logical = weights.rows();
        let physical_rows = n_logical + cfg.redundant_rows;
        let mean_abs_input = sensitivity::mean_abs_inputs(train);
        // Chips fabricate independently: pre-split one stream per draw and
        // fan out (bit-identical to the serial loop for any pool size).
        let draws = run_trials(rng, cfg.mc_draws, cfg.parallelism, |_, draw_rng| {
            self.run_one_chip(
                &weights,
                &mean_abs_input,
                physical_rows,
                train,
                test,
                env,
                draw_rng,
            )
        });
        let mut per_draw = Vec::with_capacity(cfg.mc_draws);
        let mut sigma_acc = 0.0;
        for draw in draws {
            let (rate, eff_sigma) = draw?;
            per_draw.push(rate);
            sigma_acc += eff_sigma;
        }
        let test_rate = per_draw.iter().sum::<f64>() / per_draw.len().max(1) as f64;
        Ok(VortexOutcome {
            rates: Rates {
                training_rate,
                test_rate,
            },
            weights,
            best_gamma,
            tuning_curve,
            per_draw,
            effective_sigma_mean: sigma_acc / cfg.mc_draws.max(1) as f64,
        })
    }

    /// Fabricate, pre-test, map, (optionally re-train), program and score
    /// one chip. Returns (test rate, effective σ).
    #[allow(clippy::too_many_arguments)]
    fn run_one_chip(
        &self,
        weights: &Matrix,
        mean_abs_input: &[f64],
        physical_rows: usize,
        train: &Dataset,
        test: &Dataset,
        env: &HardwareEnv,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<(f64, f64)> {
        let cfg = &self.config;
        let mut pair = fabricate_pair(weights.cols(), physical_rows, env, rng)?;

        // Pre-test and plan the mapping.
        let (mapping, eff_sigma, weights_final) = if cfg.use_amp {
            let opts = AmpChipOptions {
                pretest_bits: cfg.pretest_bits,
                pretest_repeats: cfg.pretest_repeats,
                defect_theta_threshold: cfg.defect_theta_threshold,
                redundant_rows: cfg.redundant_rows,
                pretest_compensation: false,
            };
            let plan = pretest_and_plan(&mut pair, weights, mean_abs_input, &opts, env, rng)?;
            let (mapping, eff) = (plan.mapping, plan.effective_sigma);

            // §4.3: the reduced effective variation can justify a smaller
            // penalty; optionally re-train against it.
            let weights_final = if cfg.retune_after_amp && cfg.use_vat && eff > 0.0 {
                let retuned = cfg.tuner.tune(&cfg.vat.with_sigma(eff), train)?;
                retuned.weights
            } else {
                weights.clone()
            };
            (mapping, eff, weights_final)
        } else {
            (
                RowMapping::identity_into(weights.rows(), physical_rows),
                env.variation.sigma(),
                weights.clone(),
            )
        };

        program_mapped(&mut pair, &weights_final, &mapping, env, rng)?;
        let rate = score_pair(&pair, &mapping, env, test)?;
        Ok((rate, eff_sigma))
    }
}

/// Chip-level AMP options (shared by [`VortexPipeline`] and
/// [`amp_evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmpChipOptions {
    /// Pre-test ADC resolution in bits.
    pub pretest_bits: u32,
    /// Pre-test program/sense repetitions.
    pub pretest_repeats: usize,
    /// |θ̂| beyond which a pre-tested row is treated as defective.
    pub defect_theta_threshold: f64,
    /// Extra physical rows beyond the weight-matrix rows.
    pub redundant_rows: usize,
    /// Extension beyond the paper: also divide each device's open-loop
    /// conductance target by its pre-tested multiplier `e^θ̂`, so the
    /// realized conductance lands back on target (clamped to the device
    /// window where the correction is unreachable). The paper only
    /// *remaps rows* with the pre-test data; this uses it per cell.
    pub pretest_compensation: bool,
}

impl Default for AmpChipOptions {
    fn default() -> Self {
        Self {
            pretest_bits: 6,
            pretest_repeats: 3,
            defect_theta_threshold: 2.5,
            redundant_rows: 0,
            pretest_compensation: false,
        }
    }
}

/// Fabricates a differential pair on `env` with the given physical row
/// count.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn fabricate_pair(
    cols: usize,
    physical_rows: usize,
    env: &HardwareEnv,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<DifferentialPair> {
    let config = env.crossbar_config(physical_rows, cols);
    let wm = WeightMapping::new(&env.device, env.w_max).map_err(CoreError::Xbar)?;
    DifferentialPair::fabricate(config, wm, rng).map_err(CoreError::Xbar)
}

/// Outcome of pre-testing and planning one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct AmpPlanOutcome {
    /// Weight-row → physical-row assignment.
    pub mapping: RowMapping,
    /// Post-mapping weighted residual σ.
    pub effective_sigma: f64,
    /// Pre-tested conductance multipliers of the positive crossbar.
    pub mult_pos: Matrix,
    /// Pre-tested conductance multipliers of the negative crossbar.
    pub mult_neg: Matrix,
}

/// Pre-tests a fabricated pair and plans the AMP mapping for `weights`.
///
/// # Errors
///
/// Propagates pre-test and planning errors.
pub fn pretest_and_plan(
    pair: &mut DifferentialPair,
    weights: &Matrix,
    mean_abs_input: &[f64],
    opts: &AmpChipOptions,
    env: &HardwareEnv,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<AmpPlanOutcome> {
    let adc = Adc::new(opts.pretest_bits, 1.5 * env.device.g_on()).map_err(CoreError::Xbar)?;
    let mut pt_cfg = PretestConfig::with_adc(adc).map_err(CoreError::Xbar)?;
    pt_cfg.repeats = opts.pretest_repeats;
    let rep_pos = pretest(pair.pos_mut(), &pt_cfg, rng).map_err(CoreError::Xbar)?;
    let rep_neg = pretest(pair.neg_mut(), &pt_cfg, rng).map_err(CoreError::Xbar)?;
    let mult_pos = rep_pos.multiplier_hat;
    let mult_neg = rep_neg.multiplier_hat;

    let sens = sensitivity::row_sensitivity(weights, mean_abs_input);
    let mut swv_m = swv::swv_matrix_pair(weights, &mult_pos, &mult_neg)?;
    let bad = defective_rows_pair(&mult_pos, &mult_neg, opts.defect_theta_threshold);
    // Only exclude as many rows as redundancy allows.
    let excludable = bad
        .iter()
        .copied()
        .take(opts.redundant_rows)
        .collect::<Vec<_>>();
    if !excludable.is_empty() {
        swv_m = exclude_physical_rows(&swv_m, &excludable)?;
    }
    let mapping = greedy_map(&sens, &swv_m)?;
    let eff = crate::amp::effective_sigma(weights, &mult_pos, &mult_neg, &mapping);
    Ok(AmpPlanOutcome {
        mapping,
        effective_sigma: eff,
        mult_pos,
        mult_neg,
    })
}

/// Per-cell target compensation from pre-test estimates: each device's
/// target conductance is divided by its measured multiplier `e^θ̂` so the
/// realized value `g·e^θ` lands back on target. Corrections falling
/// outside the device window clamp (those cells stay partially wrong —
/// the physical limit of the technique).
pub fn compensate_targets(
    targets: &Matrix,
    multipliers_hat: &Matrix,
    device: &vortex_device::DeviceParams,
) -> Matrix {
    Matrix::from_fn(targets.rows(), targets.cols(), |i, j| {
        let m = multipliers_hat[(i, j)].max(1e-6);
        (targets[(i, j)] / m).clamp(device.g_off(), device.g_on())
    })
}

/// Open-loop programs `weights` into `pair` through `mapping`, honoring
/// the environment's programming-path IR-drop settings.
///
/// # Errors
///
/// Propagates programming errors.
pub fn program_mapped(
    pair: &mut DifferentialPair,
    weights: &Matrix,
    mapping: &RowMapping,
    env: &HardwareEnv,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<()> {
    program_mapped_with(pair, weights, mapping, None, env, rng)
}

/// [`program_mapped`] with optional per-cell pre-test compensation: when
/// `pretest_mults = Some((pos, neg))`, every conductance target is divided
/// by the corresponding measured multiplier before pulse pre-calculation
/// (see [`compensate_targets`]).
///
/// # Errors
///
/// Propagates programming errors.
pub fn program_mapped_with(
    pair: &mut DifferentialPair,
    weights: &Matrix,
    mapping: &RowMapping,
    pretest_mults: Option<(&Matrix, &Matrix)>,
    env: &HardwareEnv,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<()> {
    let physical_weights = mapping.apply_to_rows(weights, 0.0);
    let (targets_pos, targets_neg) = pair.mapping().weights_to_targets(&physical_weights);
    let (targets_pos, targets_neg) = match pretest_mults {
        Some((mp, mn)) => (
            compensate_targets(&targets_pos, mp, &env.device),
            compensate_targets(&targets_neg, mn, &env.device),
        ),
        None => (targets_pos, targets_neg),
    };
    let (actual_pos, actual_neg, est_pos, est_neg) = if env.program_irdrop && env.r_wire > 0.0 {
        let v = env.device.v_program();
        let ap =
            ProgramVoltageMap::analytic(&targets_pos, env.r_wire, v).map_err(CoreError::Xbar)?;
        let an =
            ProgramVoltageMap::analytic(&targets_neg, env.r_wire, v).map_err(CoreError::Xbar)?;
        let (ep, en) = if env.compensate_program_irdrop {
            (Some(ap.clone()), Some(an.clone()))
        } else {
            (None, None)
        };
        (Some(ap), Some(an), ep, en)
    } else {
        (None, None, None, None)
    };
    program_with_protocol(
        pair.pos_mut(),
        &targets_pos,
        actual_pos.as_ref(),
        &ProgramOptions {
            compensation: est_pos,
            half_select_disturb: false,
        },
        rng,
    )
    .map_err(CoreError::Xbar)?;
    program_with_protocol(
        pair.neg_mut(),
        &targets_neg,
        actual_neg.as_ref(),
        &ProgramOptions {
            compensation: est_neg,
            half_select_disturb: false,
        },
        rng,
    )
    .map_err(CoreError::Xbar)
}

/// Evaluates fixed, already-trained `weights` with per-chip AMP mapping —
/// the measurement behind Fig. 7/8/9: fabricate, pre-test, plan, program,
/// score, for `mc_draws` chips.
///
/// Chips fan out over [`Parallelism::Auto`]; use [`amp_evaluate_with`] to
/// pin the pool size. Results are bit-identical either way.
///
/// # Errors
///
/// Propagates chip-level errors.
pub fn amp_evaluate(
    weights: &Matrix,
    mean_abs_input: &[f64],
    opts: &AmpChipOptions,
    env: &HardwareEnv,
    test: &Dataset,
    mc_draws: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<crate::pipeline::HardwareEvaluation> {
    amp_evaluate_with(
        weights,
        mean_abs_input,
        opts,
        env,
        test,
        mc_draws,
        rng,
        Parallelism::Auto,
    )
}

/// [`amp_evaluate`] with an explicit executor configuration. Per-chip
/// streams are pre-split from `rng` in draw order, so every
/// [`Parallelism`] setting produces the same per-draw rates.
///
/// # Errors
///
/// Propagates chip-level errors.
#[allow(clippy::too_many_arguments)]
pub fn amp_evaluate_with(
    weights: &Matrix,
    mean_abs_input: &[f64],
    opts: &AmpChipOptions,
    env: &HardwareEnv,
    test: &Dataset,
    mc_draws: usize,
    rng: &mut Xoshiro256PlusPlus,
    parallelism: Parallelism,
) -> Result<crate::pipeline::HardwareEvaluation> {
    if mc_draws == 0 {
        return Err(CoreError::InvalidParameter {
            name: "mc_draws",
            requirement: "must be positive",
        });
    }
    let physical_rows = weights.rows() + opts.redundant_rows;
    let draws = run_trials(rng, mc_draws, parallelism, |_, draw_rng| {
        let mut pair = fabricate_pair(weights.cols(), physical_rows, env, draw_rng)?;
        let plan = pretest_and_plan(&mut pair, weights, mean_abs_input, opts, env, draw_rng)?;
        let mults = if opts.pretest_compensation {
            Some((&plan.mult_pos, &plan.mult_neg))
        } else {
            None
        };
        program_mapped_with(&mut pair, weights, &plan.mapping, mults, env, draw_rng)?;
        score_pair(&pair, &plan.mapping, env, test)
    });
    let per_draw = draws.into_iter().collect::<Result<Vec<f64>>>()?;
    let mean_test_rate = per_draw.iter().sum::<f64>() / per_draw.len() as f64;
    Ok(crate::pipeline::HardwareEvaluation {
        mean_test_rate,
        per_draw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::split::stratified_split;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(4242)
    }

    fn setup() -> (Dataset, Dataset) {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 61).unwrap();
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        (s.train, s.test)
    }

    #[test]
    fn vortex_runs_end_to_end() {
        let (train, test) = setup();
        let env = HardwareEnv::with_sigma(0.6).unwrap();
        let mut cfg = VortexConfig::fast();
        cfg.redundant_rows = 10;
        let out = VortexPipeline::new(cfg)
            .run(&train, &test, &env, &mut rng())
            .unwrap();
        assert!(
            out.rates.test_rate > 0.25,
            "test rate {}",
            out.rates.test_rate
        );
        assert_eq!(out.per_draw.len(), 2);
        assert!(!out.tuning_curve.is_empty());
        assert!(out.effective_sigma_mean > 0.0);
    }

    #[test]
    fn vortex_beats_plain_old_under_strong_variation() {
        let (train, test) = setup();
        let env = HardwareEnv::with_sigma(1.0).unwrap();
        let mut r = rng();
        let vortex = VortexPipeline::new(VortexConfig {
            redundant_rows: 20,
            ..VortexConfig::fast()
        })
        .run(&train, &test, &env, &mut r)
        .unwrap();
        let old = crate::old::OldPipeline::fast()
            .run(&train, &test, &env, &mut r)
            .unwrap();
        assert!(
            vortex.rates.test_rate > old.rates.test_rate - 0.02,
            "Vortex {} should not lose to OLD {}",
            vortex.rates.test_rate,
            old.rates.test_rate
        );
    }

    #[test]
    fn ablation_switches_work() {
        let (train, test) = setup();
        let env = HardwareEnv::with_sigma(0.6).unwrap();
        let mut r = rng();
        let amp_only = VortexPipeline::new(VortexConfig {
            use_vat: false,
            redundant_rows: 10,
            ..VortexConfig::fast()
        })
        .run(&train, &test, &env, &mut r)
        .unwrap();
        assert_eq!(amp_only.best_gamma, 0.0);
        assert!(amp_only.tuning_curve.is_empty());
        let vat_only = VortexPipeline::new(VortexConfig {
            use_amp: false,
            ..VortexConfig::fast()
        })
        .run(&train, &test, &env, &mut r)
        .unwrap();
        assert!((vat_only.effective_sigma_mean - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_sigma_skips_tuning() {
        let (train, test) = setup();
        let env = HardwareEnv::ideal();
        let out = VortexPipeline::new(VortexConfig::fast())
            .run(&train, &test, &env, &mut rng())
            .unwrap();
        assert_eq!(out.best_gamma, 0.0);
        assert!(out.rates.test_rate > 0.4);
    }

    #[test]
    fn run_is_deterministic() {
        let (train, test) = setup();
        let env = HardwareEnv::with_sigma(0.5).unwrap();
        let p = VortexPipeline::new(VortexConfig::fast());
        let a = p.run(&train, &test, &env, &mut rng()).unwrap();
        let b = p.run(&train, &test, &env, &mut rng()).unwrap();
        assert_eq!(a.per_draw, b.per_draw);
        assert_eq!(a.best_gamma, b.best_gamma);
    }
}
