//! The γ self-tuning loop — §4.1.3 and Fig. 5 of the paper.
//!
//! Training samples are split into a large group (actual training) and a
//! small group (validation). For each candidate γ the network is trained
//! on the large group, device variation is *injected into the trained
//! weights* (Monte-Carlo draws of `W ∘ e^θ`), and the accuracy on the
//! validation group is measured. The γ with the best with-variation
//! validation accuracy wins and is used for the final training pass on all
//! samples.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::executor::{run_trials, Parallelism};
use vortex_nn::metrics::accuracy_of_weights;
use vortex_nn::split::tuning_split;

use crate::vat::{inject_variation, VatTrainer};
use crate::{CoreError, Result};

/// One row of the tuning curve (the data behind Fig. 4 / Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaPoint {
    /// Penalty scale γ.
    pub gamma: f64,
    /// Fraction of (large-group) training samples fitted.
    pub training_rate: f64,
    /// Mean validation accuracy with injected variation.
    pub validation_with_variation: f64,
    /// Validation accuracy of the clean (un-injected) weights.
    pub validation_without_variation: f64,
}

/// Outcome of a self-tuning scan.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningOutcome {
    /// The winning γ.
    pub best_gamma: f64,
    /// The full scan curve.
    pub curve: Vec<GammaPoint>,
    /// Weights from the final training pass (all training samples, best
    /// γ).
    pub weights: Matrix,
    /// The noise margin the winner selection used: the binomial standard
    /// error of the top validation estimate. The smallest γ within this
    /// margin of the maximum wins (the one-standard-error rule), so a
    /// reduced-scale scan cannot crown an extreme γ on sampling luck.
    pub selection_margin: f64,
}

/// Self-tuner configuration.
///
/// # Example
///
/// ```
/// use vortex_core::tuning::SelfTuner;
/// use vortex_core::vat::VatTrainer;
/// use vortex_nn::dataset::{DatasetConfig, SynthDigits};
///
/// # fn main() -> Result<(), vortex_core::CoreError> {
/// let data = SynthDigits::generate(&DatasetConfig::tiny(), 2)?;
/// let base = VatTrainer { epochs: 4, sigma: 0.6, ..Default::default() };
/// let outcome = SelfTuner::coarse().tune(&base, &data)?;
/// assert!((0.0..=1.0).contains(&outcome.best_gamma));
/// assert_eq!(outcome.curve.len(), 4); // one point per grid value
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfTuner {
    /// Candidate γ values to scan (e.g. `0.0, 0.1, …, 1.0`).
    pub gamma_grid: Vec<f64>,
    /// Fraction of training samples held out for validation.
    pub validation_fraction: f64,
    /// Monte-Carlo variation draws per validation measurement.
    pub mc_draws: usize,
    /// RNG seed for the split and the injections.
    pub seed: u64,
    /// Worker pool for the γ scan. Every setting produces identical
    /// results (each candidate γ evaluates on its own pre-split stream);
    /// only wall-clock time changes.
    pub parallelism: Parallelism,
}

impl Default for SelfTuner {
    fn default() -> Self {
        Self {
            gamma_grid: (0..=10).map(|k| k as f64 / 10.0).collect(),
            validation_fraction: 0.2,
            mc_draws: 10,
            seed: 0x7E57,
            parallelism: Parallelism::Auto,
        }
    }
}

impl SelfTuner {
    /// A coarse, fast grid for tests.
    pub fn coarse() -> Self {
        Self {
            gamma_grid: vec![0.0, 0.2, 0.5, 1.0],
            mc_draws: 4,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty grid,
    /// out-of-range γ values, or zero draws.
    pub fn validate(&self) -> Result<()> {
        if self.gamma_grid.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "gamma_grid",
                requirement: "must be non-empty",
            });
        }
        if self
            .gamma_grid
            .iter()
            .any(|g| !(0.0..=1.0).contains(g) || !g.is_finite())
        {
            return Err(CoreError::InvalidParameter {
                name: "gamma_grid",
                requirement: "all values must lie in [0, 1]",
            });
        }
        if self.mc_draws == 0 {
            return Err(CoreError::InvalidParameter {
                name: "mc_draws",
                requirement: "must be positive",
            });
        }
        if !(self.validation_fraction > 0.0 && self.validation_fraction < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "validation_fraction",
                requirement: "must lie strictly between 0 and 1",
            });
        }
        Ok(())
    }

    /// Runs the scan and the final training pass.
    ///
    /// `base` provides every VAT parameter except γ (which the scan
    /// overrides). The injected variation uses `base.sigma`.
    ///
    /// # Errors
    ///
    /// Propagates configuration, split and training errors.
    pub fn tune(&self, base: &VatTrainer, train: &Dataset) -> Result<TuningOutcome> {
        self.validate()?;
        base.validate()?;
        let _span = vortex_obs::span!("tuning.tune_seconds");
        vortex_obs::counter!("tuning.scans").incr();
        vortex_obs::counter!("tuning.candidates").add(self.gamma_grid.len() as u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        let split = tuning_split(train, self.validation_fraction, &mut rng)?;

        // One executor trial per candidate γ: each candidate trains on the
        // large group and measures with-variation validation accuracy over
        // its own pre-split injection streams, so the scan fans out over
        // the worker pool without changing any reported number.
        let points = run_trials(
            &mut rng,
            self.gamma_grid.len(),
            self.parallelism,
            |k, gamma_rng| -> Result<GammaPoint> {
                let gamma = self.gamma_grid[k];
                let trainer = base.with_gamma(gamma);
                let w = trainer.train(&split.train)?;
                let training_rate = accuracy_of_weights(&w, &split.train);
                let clean = accuracy_of_weights(&w, &split.test);
                let mut acc = 0.0;
                for _ in 0..self.mc_draws {
                    let mut draw_rng = gamma_rng.split();
                    let wv = inject_variation(&w, base.sigma, &mut draw_rng);
                    acc += accuracy_of_weights(&wv, &split.test);
                }
                Ok(GammaPoint {
                    gamma,
                    training_rate,
                    validation_with_variation: acc / self.mc_draws as f64,
                    validation_without_variation: clean,
                })
            },
        );
        let curve = points.into_iter().collect::<Result<Vec<GammaPoint>>>()?;
        // Winner selection: the paper's Fig. 5 scan takes the γ with the
        // best with-variation validation accuracy. That estimate averages
        // `mc_draws` accuracies over `split.test`, so it carries a
        // binomial standard error of ~√(p(1−p)/N) with N = draws ×
        // validation samples — at reduced scale easily larger than the
        // gap between candidates. Apply the one-standard-error rule:
        // among candidates within one SE of the maximum, prefer the
        // *smallest* γ (grid order), so the tuner never crowns an extreme
        // penalty on sampling noise. At paper scale the margin shrinks
        // toward zero and this reduces to the plain argmax.
        let mut top = f64::MIN;
        for p in &curve {
            if p.validation_with_variation > top {
                top = p.validation_with_variation;
            }
        }
        let n_eff = (split.test.len() * self.mc_draws) as f64;
        let selection_margin = (top.clamp(0.0, 1.0) * (1.0 - top.clamp(0.0, 1.0)) / n_eff).sqrt();
        let best_gamma = curve
            .iter()
            .find(|p| p.validation_with_variation >= top - selection_margin)
            .map_or(self.gamma_grid[0], |p| p.gamma);
        vortex_obs::gauge!("tuning.best_gamma").set(best_gamma);
        // Final pass on every training sample with the winning γ.
        let weights = base.with_gamma(best_gamma).train(train)?;
        Ok(TuningOutcome {
            best_gamma,
            curve,
            weights,
            selection_margin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};

    fn data() -> Dataset {
        SynthDigits::generate(&DatasetConfig::tiny(), 91).unwrap()
    }

    fn base(sigma: f64) -> VatTrainer {
        VatTrainer {
            epochs: 8,
            sigma,
            ..Default::default()
        }
    }

    #[test]
    fn validation_rejects_bad_config() {
        let mut t = SelfTuner::coarse();
        t.gamma_grid.clear();
        assert!(t.validate().is_err());
        t = SelfTuner::coarse();
        t.gamma_grid.push(1.5);
        assert!(t.validate().is_err());
        t = SelfTuner::coarse();
        t.mc_draws = 0;
        assert!(t.validate().is_err());
        t = SelfTuner::coarse();
        t.validation_fraction = 0.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn tune_produces_full_curve_and_best_gamma() {
        let d = data();
        let tuner = SelfTuner::coarse();
        let out = tuner.tune(&base(0.6), &d).unwrap();
        assert_eq!(out.curve.len(), 4);
        assert!(tuner.gamma_grid.contains(&out.best_gamma));
        // One-standard-error rule: the winner sits within the selection
        // margin of the curve's maximum, and no smaller γ does.
        let best_point = out
            .curve
            .iter()
            .find(|p| p.gamma == out.best_gamma)
            .unwrap();
        let top = out
            .curve
            .iter()
            .map(|p| p.validation_with_variation)
            .fold(f64::MIN, f64::max);
        assert!(out.selection_margin >= 0.0);
        assert!(
            best_point.validation_with_variation >= top - out.selection_margin - 1e-12,
            "winner {} vs top {} (margin {})",
            best_point.validation_with_variation,
            top,
            out.selection_margin
        );
        for p in &out.curve {
            if p.gamma < out.best_gamma {
                assert!(
                    p.validation_with_variation < top - out.selection_margin,
                    "γ = {} should have won instead",
                    p.gamma
                );
            }
        }
        assert_eq!(out.weights.rows(), d.num_features());
    }

    #[test]
    fn tuning_is_deterministic() {
        let d = data();
        let tuner = SelfTuner::coarse();
        let a = tuner.tune(&base(0.6), &d).unwrap();
        let b = tuner.tune(&base(0.6), &d).unwrap();
        assert_eq!(a.best_gamma, b.best_gamma);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn tuning_is_invariant_under_thread_count() {
        let d = data();
        let serial = SelfTuner {
            parallelism: Parallelism::Serial,
            ..SelfTuner::coarse()
        }
        .tune(&base(0.6), &d)
        .unwrap();
        for threads in [2, 8] {
            let par = SelfTuner {
                parallelism: Parallelism::Fixed(threads),
                ..SelfTuner::coarse()
            }
            .tune(&base(0.6), &d)
            .unwrap();
            assert_eq!(serial.best_gamma, par.best_gamma);
            assert_eq!(
                serial.curve, par.curve,
                "curve changed at {threads} threads"
            );
            assert_eq!(serial.weights, par.weights);
        }
    }

    #[test]
    fn training_rate_trend_is_non_increasing_overall() {
        // Fig. 4: the training rate falls as γ grows. Allow small local
        // noise, require the endpoint drop.
        let d = data();
        let tuner = SelfTuner {
            gamma_grid: vec![0.0, 0.5, 1.0],
            ..SelfTuner::coarse()
        };
        let out = tuner.tune(&base(0.8), &d).unwrap();
        let first = out.curve.first().unwrap().training_rate;
        let last = out.curve.last().unwrap().training_rate;
        assert!(
            last <= first + 0.02,
            "training rate should not grow with γ: {first} → {last}"
        );
    }

    #[test]
    fn zero_sigma_prefers_gamma_zero_region() {
        // With no variation to tolerate, the penalty can only hurt, so the
        // winning γ should be at (or near) zero.
        let d = data();
        let tuner = SelfTuner {
            gamma_grid: vec![0.0, 0.6, 1.0],
            mc_draws: 2,
            ..SelfTuner::coarse()
        };
        let out = tuner.tune(&base(0.0), &d).unwrap();
        assert!(
            out.best_gamma < 0.7,
            "σ=0 should not choose a large γ: {}",
            out.best_gamma
        );
    }
}
