//! The CLD baseline: Close-Loop on-Device training — §2.2.3 / §3 of the
//! paper.
//!
//! CLD runs the gradient-descent loop *against the physical crossbar*:
//! sense the output, compare with the target, nudge the device weights,
//! repeat (Eq. (1)). Because every update's *outcome* is re-sensed, device
//! variation is absorbed automatically — but two hardware effects remain:
//!
//! * **Sensing resolution** (§3.3): the convergence criterion only sees
//!   the ADC-quantized output.
//! * **IR-drop** (§3.2): the programming voltage reaching row `i` of
//!   column `j` is degraded, which through the sinh switching nonlinearity
//!   scales the achieved update by the diagonal matrix `D` and the
//!   per-column factor `β` of Eq. (2). On large arrays the skew of `D`
//!   leaves the far rows effectively untrainable.
//!
//! # Simulation abstraction
//!
//! CLD is simulated in the *weight domain*: one multiplicative variation
//! factor `e^θ` per weight cell scales every achieved update (open-loop
//! increments land `e^θ` off their intended size; the closed loop then
//! compensates by iterating), and the IR-drop distortion multiplies
//! updates by the `β·D` profile computed from the analytic
//! programming-voltage map of the *current* conductance state (refreshed
//! every epoch). This matches the paper's own analytical treatment
//! (Eq. (2)) while keeping the paper-scale experiments tractable.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::metrics::{accuracy_of_weights, Rates};
use vortex_xbar::irdrop::{update_rate_profile, ProgramVoltageMap};
use vortex_xbar::pair::WeightMapping;
use vortex_xbar::sensing::Adc;

use crate::old::PipelineOutcome;
use crate::pipeline::HardwareEnv;
use crate::{CoreError, Result};

/// The CLD pipeline configuration.
///
/// # Example
///
/// ```
/// use vortex_core::cld::CldTrainer;
/// use vortex_core::pipeline::HardwareEnv;
/// use vortex_linalg::rng::Xoshiro256PlusPlus;
/// use vortex_nn::dataset::{DatasetConfig, SynthDigits};
/// use vortex_nn::split::stratified_split;
///
/// # fn main() -> Result<(), vortex_core::CoreError> {
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
/// let data = SynthDigits::generate(&DatasetConfig::tiny(), 3)?;
/// let split = stratified_split(&data, 150, 80, &mut rng)?;
/// let env = HardwareEnv::with_sigma(0.5)?; // CLD absorbs this
/// let out = CldTrainer::fast().run(&split.train, &split.test, &env, &mut rng)?;
/// assert!(out.rates.test_rate > 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CldTrainer {
    /// Training epochs (full passes over the data).
    pub epochs: usize,
    /// Learning rate α of Eq. (1).
    pub learning_rate: f64,
    /// Sensing ADC resolution in bits (`None` = ideal sensing).
    pub sense_bits: Option<u32>,
    /// Full scale of the sensed output, in weight-domain output units.
    pub sense_full_scale: f64,
    /// Whether IR-drop distorts the training updates (Eq. (2)).
    pub model_irdrop: bool,
    /// Compute the β·D profile from the all-LRS worst case (§3.2's
    /// "worst case that all memristors are at LRS") instead of the
    /// current conductance state. The paper's Table 1 collapse at 784
    /// rows corresponds to this pessimistic loading assumption; the
    /// current-state profile is milder because early training happens
    /// while the array is still mostly high-resistance.
    pub worst_case_irdrop_profile: bool,
    /// Early-stop when the mean squared sensed error falls below this.
    pub tolerance: f64,
    /// Monte-Carlo fabrication draws.
    pub mc_draws: usize,
}

impl Default for CldTrainer {
    fn default() -> Self {
        Self {
            epochs: 25,
            learning_rate: 0.01,
            sense_bits: Some(6),
            sense_full_scale: 4.0,
            model_irdrop: false,
            worst_case_irdrop_profile: false,
            tolerance: 1e-4,
            mc_draws: 3,
        }
    }
}

impl CldTrainer {
    /// A faster configuration for tests.
    pub fn fast() -> Self {
        Self {
            epochs: 12,
            mc_draws: 2,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.mc_draws == 0 {
            return Err(CoreError::InvalidParameter {
                name: "epochs/mc_draws",
                requirement: "must be positive",
            });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "learning_rate",
                requirement: "must be finite and positive",
            });
        }
        if !(self.sense_full_scale.is_finite() && self.sense_full_scale > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sense_full_scale",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Runs the CLD pipeline: on-device training per Monte-Carlo draw,
    /// then test-rate measurement on the trained (hardware) weights.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model errors.
    pub fn run(
        &self,
        train: &Dataset,
        test: &Dataset,
        env: &HardwareEnv,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<PipelineOutcome> {
        self.validate()?;
        if train.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "train",
                requirement: "must be non-empty",
            });
        }
        let adc = match self.sense_bits {
            Some(bits) => Some(Adc::new(bits, self.sense_full_scale).map_err(CoreError::Xbar)?),
            None => None,
        };
        let mut per_draw = Vec::with_capacity(self.mc_draws);
        let mut train_rates = Vec::with_capacity(self.mc_draws);
        let mut last_weights = Matrix::zeros(train.num_features(), train.num_classes());
        for _ in 0..self.mc_draws {
            let mut draw_rng = rng.split();
            let realized = self.train_on_device(train, env, adc.as_ref(), &mut draw_rng)?;
            train_rates.push(accuracy_of_weights(&realized, train));
            per_draw.push(accuracy_of_weights(&realized, test));
            last_weights = realized;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        Ok(PipelineOutcome {
            rates: Rates {
                training_rate: mean(&train_rates),
                test_rate: mean(&per_draw),
            },
            weights: last_weights,
            per_draw,
        })
    }

    /// One on-device training run: returns the realized hardware weight
    /// matrix.
    fn train_on_device(
        &self,
        train: &Dataset,
        env: &HardwareEnv,
        adc: Option<&Adc>,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<Matrix> {
        let n = train.num_features();
        let c = train.num_classes();
        // Per-cell variation multipliers of this fabricated array. The
        // achieved-update scale is clamped: a real close-loop programmer
        // works with bounded pulse widths, so a pathologically fast
        // device cannot blow an update up without limit (this also keeps
        // the per-cell effective learning rate inside the delta-rule
        // stability region).
        let theta = env.variation.sample_theta_matrix(n, c, rng);
        let update_scale_variation = theta.map(|t| t.exp().clamp(0.05, 3.0));

        let mut w = Matrix::zeros(n, c);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let wm = WeightMapping::new(&env.device, env.w_max).map_err(CoreError::Xbar)?;

        // Normalized-LMS step: dividing by the mean input energy keeps the
        // per-cell effective rate inside the delta-rule stability region
        // regardless of the input dimension (a 784-pixel image carries
        // ~16x the energy of a 49-pixel one).
        let mean_energy = {
            let mut acc = 0.0;
            for i in 0..train.len() {
                acc += vortex_linalg::vector::dot(train.image(i), train.image(i));
            }
            (acc / train.len() as f64).max(1e-9)
        };
        let step_scale = self.learning_rate / mean_energy;

        for epoch in 0..self.epochs {
            // Refresh the IR-drop update-rate profile from the current
            // conductance state.
            let irdrop_profile = if self.model_irdrop && env.r_wire > 0.0 {
                Some(self.irdrop_update_profile(&w, &wm, env)?)
            } else {
                None
            };
            rng.shuffle(&mut order);
            let mut sq_err = 0.0;
            for &i in &order {
                let x = train.image(i);
                let label = train.label(i);
                let y = w.vecmat(x);
                let y_sensed: Vec<f64> = match adc {
                    Some(adc) => y.iter().map(|&v| adc.quantize_signed(v)).collect(),
                    None => y,
                };
                for j in 0..c {
                    let target = if label as usize == j { 1.0 } else { -1.0 };
                    let err = target - y_sensed[j];
                    sq_err += err * err;
                    if err == 0.0 {
                        continue;
                    }
                    let step = step_scale * err;
                    for (q, &xq) in x.iter().enumerate() {
                        if xq == 0.0 {
                            continue;
                        }
                        let mut delta = step * xq;
                        // Achieved update is scaled by the device's e^θ …
                        delta *= update_scale_variation[(q, j)];
                        // … and by the IR-drop β·D profile.
                        if let Some(profile) = &irdrop_profile {
                            delta *= profile[(q, j)];
                        }
                        w[(q, j)] = (w[(q, j)] + delta).clamp(-env.w_max, env.w_max);
                    }
                }
            }
            let mse = sq_err / (train.len() * c) as f64;
            if mse < self.tolerance && epoch > 0 {
                break;
            }
        }
        Ok(w)
    }

    /// The per-cell `β·D` update-rate profile of Eq. (2), from the
    /// analytic programming-voltage map of the current weights.
    fn irdrop_update_profile(
        &self,
        w: &Matrix,
        wm: &WeightMapping,
        env: &HardwareEnv,
    ) -> Result<Matrix> {
        // Conductance loading: either the paper's all-LRS worst case or
        // the positive-part targets of the current weights (the dominant
        // crossbar for the strongly driven cells).
        let g = if self.worst_case_irdrop_profile {
            Matrix::filled(w.rows(), w.cols(), env.device.g_on())
        } else {
            w.map(|v| {
                let (gp, gn) = wm.to_conductance_pair(v);
                gp.max(gn)
            })
        };
        let map = ProgramVoltageMap::analytic(&g, env.r_wire, env.device.v_program())
            .map_err(CoreError::Xbar)?;
        let mut profile = Matrix::zeros(w.rows(), w.cols());
        for j in 0..w.cols() {
            let d = update_rate_profile(&map, &env.device, j);
            for (i, &di) in d.iter().enumerate() {
                profile[(i, j)] = di;
            }
        }
        Ok(profile)
    }
}

/// Convenience: sensed-output mean absolute error of a weight matrix
/// against the ±1 targets (used by tests and the Fig. 2 reproduction).
pub fn mean_target_error(w: &Matrix, data: &Dataset) -> f64 {
    let mut acc = 0.0;
    for i in 0..data.len() {
        let y = w.vecmat(data.image(i));
        for (j, &yj) in y.iter().enumerate() {
            let target = if data.label(i) as usize == j {
                1.0
            } else {
                -1.0
            };
            acc += (target - yj).abs();
        }
    }
    acc / (data.len() * data.num_classes()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::split::stratified_split;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(99)
    }

    fn setup() -> (Dataset, Dataset) {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 29).unwrap();
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        (s.train, s.test)
    }

    #[test]
    fn validation() {
        let mut t = CldTrainer::fast();
        t.epochs = 0;
        assert!(t.validate().is_err());
        t = CldTrainer::fast();
        t.learning_rate = -0.1;
        assert!(t.validate().is_err());
        t = CldTrainer::fast();
        t.sense_full_scale = 0.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cld_learns_on_ideal_hardware() {
        let (train, test) = setup();
        let out = CldTrainer::fast()
            .run(&train, &test, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        assert!(out.rates.training_rate > 0.6, "{}", out.rates.training_rate);
        assert!(out.rates.test_rate > 0.4, "{}", out.rates.test_rate);
    }

    #[test]
    fn cld_tolerates_variation_better_than_its_own_no_variation_loss() {
        // The close loop should keep most of its accuracy under σ = 0.8.
        let (train, test) = setup();
        let t = CldTrainer::fast();
        let clean = t
            .run(&train, &test, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        let noisy = t
            .run(
                &train,
                &test,
                &HardwareEnv::with_sigma(0.8).unwrap(),
                &mut rng(),
            )
            .unwrap();
        assert!(
            noisy.rates.test_rate > clean.rates.test_rate - 0.15,
            "CLD should absorb variation: clean {} noisy {}",
            clean.rates.test_rate,
            noisy.rates.test_rate
        );
    }

    #[test]
    fn coarse_sensing_limits_convergence_precision() {
        // §3.3: the convergence criterion only sees the quantized output,
        // so a coarse ADC cannot drive the outputs as close to the ±1
        // targets as a fine one (its dead zone stops the updates early).
        let (train, _) = setup();
        let fine = CldTrainer {
            sense_bits: Some(10),
            ..CldTrainer::fast()
        };
        let coarse = CldTrainer {
            sense_bits: Some(2),
            ..CldTrainer::fast()
        };
        let env = HardwareEnv::ideal();
        let f = fine.run(&train, &train, &env, &mut rng()).unwrap();
        let c = coarse.run(&train, &train, &env, &mut rng()).unwrap();
        let err_fine = mean_target_error(&f.weights, &train);
        let err_coarse = mean_target_error(&c.weights, &train);
        assert!(
            err_coarse > err_fine,
            "2-bit sensing must leave larger target error: coarse {err_coarse} fine {err_fine}"
        );
    }

    #[test]
    fn ir_drop_hurts_cld() {
        let (train, test) = setup();
        let without = CldTrainer {
            model_irdrop: false,
            ..CldTrainer::fast()
        };
        let with = CldTrainer {
            model_irdrop: true,
            ..CldTrainer::fast()
        };
        // Strong wires to make the effect visible on a small array.
        let env = HardwareEnv {
            r_wire: 120.0,
            ..HardwareEnv::ideal()
        };
        let a = without.run(&train, &test, &env, &mut rng()).unwrap();
        let b = with.run(&train, &test, &env, &mut rng()).unwrap();
        assert!(
            b.rates.training_rate <= a.rates.training_rate + 0.02,
            "IR-drop should not improve CLD: without {} with {}",
            a.rates.training_rate,
            b.rates.training_rate
        );
    }

    #[test]
    fn worst_case_profile_is_more_damaging_than_current_state() {
        // The paper's Table 1 collapse assumes all-LRS loading; the
        // physically-refreshing profile is milder.
        let (train, test) = setup();
        let env = HardwareEnv {
            r_wire: 40.0,
            ..HardwareEnv::ideal()
        };
        let current = CldTrainer {
            model_irdrop: true,
            ..CldTrainer::fast()
        };
        let worst = CldTrainer {
            model_irdrop: true,
            worst_case_irdrop_profile: true,
            ..CldTrainer::fast()
        };
        let a = current.run(&train, &test, &env, &mut rng()).unwrap();
        let b = worst.run(&train, &test, &env, &mut rng()).unwrap();
        assert!(
            b.rates.training_rate <= a.rates.training_rate + 0.02,
            "worst-case profile {} should not out-train current-state {}",
            b.rates.training_rate,
            a.rates.training_rate
        );
    }

    #[test]
    fn run_is_deterministic() {
        let (train, test) = setup();
        let t = CldTrainer::fast();
        let env = HardwareEnv::with_sigma(0.5).unwrap();
        let a = t.run(&train, &test, &env, &mut rng()).unwrap();
        let b = t.run(&train, &test, &env, &mut rng()).unwrap();
        assert_eq!(a.per_draw, b.per_draw);
    }

    #[test]
    fn mean_target_error_decreases_with_training() {
        let (train, _) = setup();
        let zero = Matrix::zeros(train.num_features(), train.num_classes());
        let err0 = mean_target_error(&zero, &train);
        let out = CldTrainer::fast()
            .run(&train, &train, &HardwareEnv::ideal(), &mut rng())
            .unwrap();
        let err1 = mean_target_error(&out.weights, &train);
        assert!(
            err1 < err0,
            "training must reduce target error: {err0} → {err1}"
        );
    }
}
