//! **Vortex** — variation-aware training for memristor crossbars.
//!
//! Reproduction of Liu et al., *"Vortex: Variation-aware Training for
//! Memristor X-bar"*, DAC 2015. The crate implements the paper's two
//! techniques and the baselines they are measured against:
//!
//! * [`vat`] — **Variation-Aware Training**: per-column hinge training
//!   with an analytic "penalty of variations" term bounded through the
//!   Chi-square confidence radius [`rho`] (Eq. (4)–(10)).
//! * [`tuning`] — the γ **self-tuning** loop (Fig. 5): scan the penalty
//!   scale on a held-out validation split with injected variation.
//! * [`amp`] — **Adaptive Mapping**: pre-test devices, rank weight rows by
//!   variation sensitivity (Eq. (11)), greedily match them to crossbar
//!   rows by summed weighted variation (Eq. (12), Algorithm 1), with
//!   optional redundant rows and defect avoidance.
//! * [`old`] / [`cld`] — the **open-loop off-device** and **close-loop
//!   on-device** baselines of §2.2.3 and §3.
//! * [`vortex`] — the integrated VAT + AMP pipeline (§4.3).
//! * [`pipeline`] — the shared hardware-evaluation harness (fabricate →
//!   program → read → test rate).
//!
//! # Quickstart
//!
//! ```
//! use vortex_core::pipeline::HardwareEnv;
//! use vortex_core::vortex::{VortexPipeline, VortexConfig};
//! use vortex_nn::dataset::{DatasetConfig, SynthDigits};
//! use vortex_nn::split::stratified_split;
//! use vortex_linalg::rng::Xoshiro256PlusPlus;
//!
//! # fn main() -> Result<(), vortex_core::CoreError> {
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
//! let data = SynthDigits::generate(&DatasetConfig::tiny(), 1)?;
//! let split = stratified_split(&data, 200, 100, &mut rng)?;
//! let env = HardwareEnv::with_sigma(0.4)?;
//! let mut config = VortexConfig::fast();
//! config.redundant_rows = 0;
//! let outcome = VortexPipeline::new(config).run(&split.train, &split.test, &env, &mut rng)?;
//! assert!(outcome.rates.test_rate > 0.2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod amp;
pub mod cld;
pub mod column;
pub mod config;
pub mod error;
pub mod old;
pub mod pipeline;
pub mod prelude;
pub mod report;
pub mod retention;
pub mod rho;
pub mod tiling;
pub mod tuning;
pub mod vat;
pub mod vortex;

pub use pipeline::HardwareEnv;
pub use vat::VatTrainer;

/// Errors produced by the Vortex core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// An underlying numerical routine failed.
    Numeric(vortex_linalg::LinalgError),
    /// An underlying device-model operation failed.
    Device(vortex_device::DeviceError),
    /// An underlying crossbar operation failed.
    Xbar(vortex_xbar::XbarError),
    /// An underlying NN-substrate operation failed.
    Nn(vortex_nn::NnError),
    /// An underlying inference-runtime operation failed.
    Runtime(vortex_runtime::RuntimeError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
            CoreError::Numeric(e) => write!(f, "numerical error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::Xbar(e) => write!(f, "crossbar error: {e}"),
            CoreError::Nn(e) => write!(f, "nn error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numeric(e) => Some(e),
            CoreError::Device(e) => Some(e),
            CoreError::Xbar(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            CoreError::InvalidParameter { .. } => None,
        }
    }
}

impl From<vortex_linalg::LinalgError> for CoreError {
    fn from(e: vortex_linalg::LinalgError) -> Self {
        CoreError::Numeric(e)
    }
}

impl From<vortex_device::DeviceError> for CoreError {
    fn from(e: vortex_device::DeviceError) -> Self {
        CoreError::Device(e)
    }
}

impl From<vortex_xbar::XbarError> for CoreError {
    fn from(e: vortex_xbar::XbarError) -> Self {
        CoreError::Xbar(e)
    }
}

impl From<vortex_nn::NnError> for CoreError {
    fn from(e: vortex_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<vortex_runtime::RuntimeError> for CoreError {
    fn from(e: vortex_runtime::RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: CoreError = vortex_linalg::LinalgError::Singular { pivot: 1 }.into();
        assert!(e.to_string().contains("numerical"));
        let e: CoreError = vortex_nn::NnError::InvalidParameter {
            name: "x",
            requirement: "y",
        }
        .into();
        assert!(e.to_string().contains("nn error"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
