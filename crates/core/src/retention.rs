//! Retention analysis: how long does a programmed classifier stay
//! accurate?
//!
//! Extension beyond the paper: after programming, every device's
//! conductance relaxes by its own random power law
//! ([`vortex_device::drift::RetentionModel`]). Because the drift is just
//! one more multiplicative per-device disturbance, VAT's variation guard
//! band also buys *retention time* — the variation-aware classifier stays
//! above a given accuracy floor longer than the conventional one.

use vortex_device::drift::RetentionModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::metrics::accuracy_of_weights;

use crate::{CoreError, Result};

/// Applies one sampled drift realization to a weight matrix:
/// `w'_ij = w_ij · decay_ij(t)` (weight-domain abstraction of both
/// crossbars drifting; the shared baseline conductance cancels in the
/// differential pair, leaving the multiplicative factor on the weight).
pub fn apply_retention(
    w: &Matrix,
    model: &RetentionModel,
    t_s: f64,
    rng: &mut Xoshiro256PlusPlus,
) -> Matrix {
    let decay = model.sample_decay_matrix(w.rows(), w.cols(), t_s, rng);
    w.hadamard(&decay)
}

/// One point of a retention curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionPoint {
    /// Time after programming, seconds.
    pub t_s: f64,
    /// Mean test rate over the Monte-Carlo drift draws.
    pub test_rate: f64,
}

/// Measures a software-evaluated retention curve: test rate of the
/// drifted weights at each requested time, averaged over `mc_draws`
/// drift realizations.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `mc_draws == 0` or `times`
/// is empty.
pub fn retention_curve(
    weights: &Matrix,
    model: &RetentionModel,
    times_s: &[f64],
    test: &Dataset,
    mc_draws: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Vec<RetentionPoint>> {
    if mc_draws == 0 {
        return Err(CoreError::InvalidParameter {
            name: "mc_draws",
            requirement: "must be positive",
        });
    }
    if times_s.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "times_s",
            requirement: "must be non-empty",
        });
    }
    let mut curve = Vec::with_capacity(times_s.len());
    for &t in times_s {
        let mut acc = 0.0;
        for _ in 0..mc_draws {
            let drifted = apply_retention(weights, model, t, rng);
            acc += accuracy_of_weights(&drifted, test);
        }
        curve.push(RetentionPoint {
            t_s: t,
            test_rate: acc / mc_draws as f64,
        });
    }
    Ok(curve)
}

/// The first time in `times_s` at which the mean test rate falls below
/// `floor` (`None` if it never does) — a "retention lifetime" estimate.
pub fn lifetime_at_floor(curve: &[RetentionPoint], floor: f64) -> Option<f64> {
    curve.iter().find(|p| p.test_rate < floor).map(|p| p.t_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vat::VatTrainer;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::split::stratified_split;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(909)
    }

    fn setup() -> (Dataset, Dataset) {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 44).unwrap();
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        (s.train, s.test)
    }

    fn model() -> RetentionModel {
        RetentionModel::new(0.05, 0.05, 1.0).unwrap()
    }

    #[test]
    fn curve_decays_over_time() {
        let (train, test) = setup();
        let w = VatTrainer {
            epochs: 10,
            gamma: 0.0,
            ..Default::default()
        }
        .train(&train)
        .unwrap();
        let times = [0.0, 1e3, 1e6, 1e9];
        let curve = retention_curve(&w, &model(), &times, &test, 4, &mut rng()).unwrap();
        assert_eq!(curve.len(), 4);
        let first = curve.first().unwrap().test_rate;
        let last = curve.last().unwrap().test_rate;
        assert!(
            last <= first + 0.02,
            "accuracy must not grow with drift: {first} → {last}"
        );
    }

    #[test]
    fn zero_time_is_lossless() {
        let (train, test) = setup();
        let w = VatTrainer {
            epochs: 8,
            ..Default::default()
        }
        .train(&train)
        .unwrap();
        let clean = accuracy_of_weights(&w, &test);
        let curve = retention_curve(&w, &model(), &[0.0], &test, 1, &mut rng()).unwrap();
        assert!((curve[0].test_rate - clean).abs() < 1e-12);
    }

    #[test]
    fn vat_extends_retention_lifetime() {
        // The guard band against multiplicative disturbances also guards
        // against drift dispersion.
        let (train, test) = setup();
        let strong_drift = RetentionModel::new(0.08, 0.12, 1.0).unwrap();
        let plain = VatTrainer {
            epochs: 10,
            gamma: 0.0,
            sigma: 0.8,
            ..Default::default()
        }
        .train(&train)
        .unwrap();
        let vat = VatTrainer {
            epochs: 10,
            gamma: 0.4,
            sigma: 0.8,
            ..Default::default()
        }
        .train(&train)
        .unwrap();
        let times = [1e6, 1e8, 1e10];
        let mut r = rng();
        let plain_curve = retention_curve(&plain, &strong_drift, &times, &test, 6, &mut r).unwrap();
        let vat_curve = retention_curve(&vat, &strong_drift, &times, &test, 6, &mut r).unwrap();
        let mean =
            |c: &[RetentionPoint]| c.iter().map(|p| p.test_rate).sum::<f64>() / c.len() as f64;
        assert!(
            mean(&vat_curve) >= mean(&plain_curve) - 0.02,
            "VAT {} should hold up at least as well as plain {} under drift",
            mean(&vat_curve),
            mean(&plain_curve)
        );
    }

    #[test]
    fn lifetime_helper() {
        let curve = vec![
            RetentionPoint {
                t_s: 1.0,
                test_rate: 0.9,
            },
            RetentionPoint {
                t_s: 10.0,
                test_rate: 0.8,
            },
            RetentionPoint {
                t_s: 100.0,
                test_rate: 0.6,
            },
        ];
        assert_eq!(lifetime_at_floor(&curve, 0.7), Some(100.0));
        assert_eq!(lifetime_at_floor(&curve, 0.5), None);
    }

    #[test]
    fn validation() {
        let (_, test) = setup();
        let w = Matrix::zeros(196, 10);
        assert!(retention_curve(&w, &model(), &[], &test, 1, &mut rng()).is_err());
        assert!(retention_curve(&w, &model(), &[1.0], &test, 0, &mut rng()).is_err());
    }
}
