//! The workspace-level error facade.
//!
//! Seven crates each carry their own error enum — sensible inside the
//! workspace, noisy at its boundary: every binary and example ends up
//! threading a different error type (or `Box<dyn Error>`) per call site.
//! [`Error`] is the one type an application needs: every workspace error
//! converts into it via `From`, so `?` works uniformly across the whole
//! pipeline, and [`std::io::Error`] converts too so binaries that read
//! datasets or write artifacts need nothing else.
//!
//! ```
//! use vortex_core::error::Error;
//!
//! fn main_like() -> Result<(), Error> {
//!     let mapping = vortex_xbar::pair::WeightMapping::new(
//!         &vortex_device::DeviceParams::default(),
//!         1.0,
//!     )?; // XbarError → Error
//!     let _ = mapping;
//!     Ok(())
//! }
//! ```
//!
//! All workspace error enums (this one included) are `#[non_exhaustive]`:
//! downstream matches must carry a wildcard arm, which lets the workspace
//! add failure modes without a major version bump.

/// Convenience alias over the workspace-level [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Any error the Vortex workspace can produce, plus I/O.
///
/// One variant per workspace crate, mirroring the dependency layering;
/// [`Error::Io`] covers the filesystem work that binaries and examples do
/// around the library calls.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Training/evaluation pipeline error (`vortex-core`).
    Core(crate::CoreError),
    /// Device-model error (`vortex-device`).
    Device(vortex_device::DeviceError),
    /// Numerical-kernel error (`vortex-linalg`).
    Linalg(vortex_linalg::LinalgError),
    /// NN-substrate error (`vortex-nn`).
    Nn(vortex_nn::NnError),
    /// Crossbar-simulator error (`vortex-xbar`).
    Xbar(vortex_xbar::XbarError),
    /// Inference-runtime error (`vortex-runtime`).
    Runtime(vortex_runtime::RuntimeError),
    /// Model-artifact encode/decode error (`vortex-runtime`).
    Artifact(vortex_runtime::ArtifactError),
    /// Filesystem/stream error, flattened to keep [`Error`] `Clone`.
    Io {
        /// The [`std::io::ErrorKind`] of the underlying error.
        kind: std::io::ErrorKind,
        /// The rendered error message.
        message: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Device(e) => write!(f, "device: {e}"),
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Nn(e) => write!(f, "nn: {e}"),
            Error::Xbar(e) => write!(f, "xbar: {e}"),
            Error::Runtime(e) => write!(f, "runtime: {e}"),
            Error::Artifact(e) => write!(f, "artifact: {e}"),
            Error::Io { kind, message } => write!(f, "io ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Device(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Xbar(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Io { .. } => None,
        }
    }
}

impl From<crate::CoreError> for Error {
    fn from(e: crate::CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<vortex_device::DeviceError> for Error {
    fn from(e: vortex_device::DeviceError) -> Self {
        Error::Device(e)
    }
}

impl From<vortex_linalg::LinalgError> for Error {
    fn from(e: vortex_linalg::LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<vortex_nn::NnError> for Error {
    fn from(e: vortex_nn::NnError) -> Self {
        Error::Nn(e)
    }
}

impl From<vortex_xbar::XbarError> for Error {
    fn from(e: vortex_xbar::XbarError) -> Self {
        Error::Xbar(e)
    }
}

impl From<vortex_runtime::RuntimeError> for Error {
    fn from(e: vortex_runtime::RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<vortex_runtime::ArtifactError> for Error {
    fn from(e: vortex_runtime::ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workspace_error_converts() {
        let cases: Vec<Error> = vec![
            crate::CoreError::InvalidParameter {
                name: "x",
                requirement: "y",
            }
            .into(),
            vortex_linalg::LinalgError::Singular { pivot: 0 }.into(),
            vortex_nn::NnError::InvalidParameter {
                name: "x",
                requirement: "y",
            }
            .into(),
            vortex_runtime::RuntimeError::InvalidParameter {
                name: "x",
                requirement: "y",
            }
            .into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_errors_flatten_and_stay_clone() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file").into();
        let copy = e.clone();
        assert_eq!(e, copy);
        match e {
            Error::Io { kind, ref message } => {
                assert_eq!(kind, std::io::ErrorKind::NotFound);
                assert!(message.contains("missing file"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
