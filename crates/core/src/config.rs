//! Serializable experiment configuration shared by the experiment harness
//! and benches.

use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// Top-level knobs of a paper experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Image side (28, 14 or 7 in the paper).
    pub image_side: usize,
    /// Training samples (4000 in the paper).
    pub n_train: usize,
    /// Test samples (2000 in the paper).
    pub n_test: usize,
    /// Device-variation σ.
    pub sigma: f64,
    /// Wire resistance (2.5 Ω in Table 1; 0 disables IR-drop).
    pub r_wire: f64,
    /// Redundant rows for AMP.
    pub redundant_rows: usize,
    /// Pre-test ADC bits.
    pub adc_bits: u32,
    /// Monte-Carlo fabrication draws.
    pub mc_draws: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            image_side: 28,
            n_train: 4000,
            n_test: 2000,
            sigma: 0.6,
            r_wire: 0.0,
            redundant_rows: 100,
            adc_bits: 6,
            mc_draws: 5,
            seed: 2015,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick runs and CI.
    pub fn quick() -> Self {
        Self {
            image_side: 14,
            n_train: 400,
            n_test: 200,
            mc_draws: 2,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on degenerate values.
    pub fn validate(&self) -> Result<()> {
        if self.image_side == 0 || 28 % self.image_side != 0 && self.image_side != 28 {
            // Only sides that divide into the 28-pixel benchmark cleanly.
            if ![7, 14, 28].contains(&self.image_side) {
                return Err(CoreError::InvalidParameter {
                    name: "image_side",
                    requirement: "must be one of 7, 14, 28",
                });
            }
        }
        if self.n_train == 0 || self.n_test == 0 || self.mc_draws == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n_train/n_test/mc_draws",
                requirement: "must all be positive",
            });
        }
        if !(self.sigma.is_finite() && self.sigma >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.r_wire.is_finite() && self.r_wire >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "r_wire",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Number of crossbar rows (pixels) this configuration uses.
    pub fn rows(&self) -> usize {
        self.image_side * self.image_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.rows(), 784);
        assert_eq!(c.n_train, 4000);
        assert_eq!(c.n_test, 2000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation() {
        let c = ExperimentConfig {
            image_side: 9,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            n_train: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            sigma: -1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(ExperimentConfig::quick().validate().is_ok());
    }

    #[test]
    fn rows_for_undersampled_benchmarks() {
        let mut c = ExperimentConfig {
            image_side: 14,
            ..Default::default()
        };
        assert_eq!(c.rows(), 196);
        c.image_side = 7;
        assert_eq!(c.rows(), 49);
    }
}
