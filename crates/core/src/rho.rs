//! The Chi-square confidence radius ρ of the VAT penalty bound.
//!
//! Eq. (7) of the paper bounds the variation penalty by
//! `‖θ‖₂ · ‖V⁽ⁱ⁾‖₂`. With `θ_q ~ N(0, σ²)` i.i.d. over the `n` crossbar
//! rows, `‖θ‖₂² / σ² ~ χ²(n)`, so at confidence level `c`
//! `‖θ‖₂ ≤ ρ = σ·sqrt(χ²_c(n))`.

use serde::{Deserialize, Serialize};
use vortex_linalg::chi2::chi2_quantile;

use crate::{CoreError, Result};

/// Configuration of the penalty-bound confidence radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RhoConfig {
    /// Confidence level of the Chi-square bound (the probability that the
    /// realized `‖θ‖₂` stays within ρ).
    pub confidence: f64,
}

impl Default for RhoConfig {
    fn default() -> Self {
        Self { confidence: 0.95 }
    }
}

impl RhoConfig {
    /// Computes `ρ = σ·sqrt(χ²_c(n))` for `n` devices with log-std `σ`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the confidence is not in
    /// `(0, 1)`, `n == 0`, or `sigma < 0`.
    pub fn rho(&self, sigma: f64, n: usize) -> Result<f64> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "confidence",
                requirement: "must lie strictly between 0 and 1",
            });
        }
        if n == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n",
                requirement: "must be positive",
            });
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if sigma == 0.0 {
            return Ok(0.0);
        }
        let q = chi2_quantile(self.confidence, n)?;
        Ok(sigma * q.sqrt())
    }

    /// The per-device RMS-normalized radius `ρ/√n = σ·sqrt(χ²_c(n)/n)`.
    ///
    /// The raw Cauchy–Schwarz bound of Eq. (7) treats the whole θ vector
    /// as adversarially aligned with `x ∘ w`; plugging it in verbatim
    /// makes the `γ = 1` end of the paper's sweep wildly infeasible (the
    /// penalty would exceed the achievable margin by an order of
    /// magnitude, which contradicts the ~65 % training rate the paper
    /// still reports there). Normalizing by `√n` keeps the Chi-square
    /// confidence machinery while making `γ ∈ [0, 1]` scan from "no
    /// penalty" to "about one standard deviation of the output
    /// perturbation" — the calibration under which the paper's interior
    /// optimum γ appears. `sqrt(χ²_c(n)/n) → 1` from above as `n` grows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::rho`].
    pub fn rho_rms(&self, sigma: f64, n: usize) -> Result<f64> {
        Ok(self.rho(sigma, n)? / (n as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_linalg::distributions::Normal;
    use vortex_linalg::rng::Xoshiro256PlusPlus;
    use vortex_linalg::vector;

    #[test]
    fn zero_sigma_gives_zero_rho() {
        assert_eq!(RhoConfig::default().rho(0.0, 784).unwrap(), 0.0);
    }

    #[test]
    fn rho_grows_with_sigma_and_n() {
        let cfg = RhoConfig::default();
        let a = cfg.rho(0.3, 100).unwrap();
        let b = cfg.rho(0.6, 100).unwrap();
        let c = cfg.rho(0.6, 784).unwrap();
        assert!((b - 2.0 * a).abs() < 1e-9, "rho linear in sigma");
        assert!(c > b, "rho grows with n");
    }

    #[test]
    fn rho_covers_the_stated_fraction_of_draws() {
        // Empirically: P(‖θ‖₂ ≤ ρ) ≈ confidence.
        let cfg = RhoConfig { confidence: 0.95 };
        let sigma = 0.6;
        let n = 100;
        let rho = cfg.rho(sigma, n).unwrap();
        let normal = Normal::new(0.0, sigma).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let trials = 20_000;
        let inside = (0..trials)
            .filter(|_| {
                let theta = normal.sample_vec(&mut rng, n);
                vector::norm2(&theta) <= rho
            })
            .count();
        let frac = inside as f64 / trials as f64;
        assert!((frac - 0.95).abs() < 0.01, "coverage {frac}");
    }

    #[test]
    fn validation() {
        let cfg = RhoConfig { confidence: 1.5 };
        assert!(cfg.rho(0.6, 100).is_err());
        let cfg = RhoConfig::default();
        assert!(cfg.rho(0.6, 0).is_err());
        assert!(cfg.rho(-0.1, 10).is_err());
    }

    #[test]
    fn paper_scale_values() {
        // For n = 784, sqrt(χ²₀.₉₅) ≈ 29.9; ρ at σ = 0.6 ≈ 17.9.
        let rho = RhoConfig::default().rho(0.6, 784).unwrap();
        assert!((rho - 17.9).abs() < 0.5, "rho = {rho}");
    }
}
