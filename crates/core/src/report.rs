//! Plain-text table rendering for the experiment harness.
//!
//! The experiments binary prints every figure/table of the paper as an
//! aligned text table; this module is the tiny formatter behind that.

/// A fixed-column text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row from display values.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn add_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = *w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a rate as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(&["a".to_string(), "1.0".to_string()]);
        t.add_row(&["longer".to_string(), "2".to_string()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(&["only one".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8491), "84.9%");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn display_row() {
        let mut t = Table::new("d", &["a", "b"]);
        t.add_display_row(&[&1.5_f64, &"x"]);
        assert!(t.render().contains("1.5"));
    }
}
