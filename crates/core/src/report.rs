//! Plain-text table rendering for the experiment harness.
//!
//! The experiments binary prints every figure/table of the paper as an
//! aligned text table; this module is the tiny formatter behind that.

/// A fixed-column text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells from anything yielding string-convertible
    /// items (owned arrays, vectors, iterators, `&[String]`, …).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn add_row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row from display values.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn add_display_row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: std::fmt::Display,
    {
        self.add_row(cells.into_iter().map(|c| c.to_string()));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Serializes the table as a self-describing JSON object:
    /// `{"title": …, "header": […], "rows": [[…], …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(cell));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = *w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

// The JSON string escaper lives in `vortex_obs::json` so experiment
// tables and metric snapshots escape identically; re-exported here to
// keep this module the report-side home of the API.
pub use vortex_obs::json::json_string;

/// Formats a rate as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(["a", "1.0"]);
        t.add_row(["longer".to_string(), "2".to_string()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn add_row_accepts_borrowed_and_iterator_inputs() {
        let mut t = Table::new("Demo", &["a", "b"]);
        let owned = vec!["1".to_string(), "2".to_string()];
        t.add_row(&owned); // borrowed slice of Strings still works
        t.add_row(owned); // and so does the owned vector
        t.add_row((0..2).map(|i| i.to_string()));
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[0], t.rows()[1]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8491), "84.9%");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn display_row() {
        let mut t = Table::new("d", &["a", "b"]);
        t.add_display_row([&1.5_f64 as &dyn std::fmt::Display, &"x"]);
        t.add_display_row([1, 2]);
        assert!(t.render().contains("1.5"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn json_escapes_and_structures() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), r#""\u0001""#);
        let mut t = Table::new("T \"quoted\"", &["h1", "h2"]);
        t.add_row(["x", "1"]);
        let j = t.to_json();
        assert_eq!(
            j,
            r#"{"title":"T \"quoted\"","header":["h1","h2"],"rows":[["x","1"]]}"#
        );
        assert!(Table::new("empty", &["a"])
            .to_json()
            .contains("\"rows\":[]"));
    }

    #[test]
    fn table_json_escapes_control_characters_and_passes_non_ascii() {
        // Control characters anywhere in a table must come out as \uXXXX
        // escapes; non-ASCII text passes through untouched (JSON is UTF-8).
        let mut t = Table::new("\u{7}bell σ-sweep", &["col\n1", "β"]);
        t.add_row(["\u{1}ctl\u{1f}", "λ → ∞"]);
        let j = t.to_json();
        assert!(j.contains("\\u0007bell σ-sweep"));
        assert!(j.contains("col\\n1"));
        assert!(j.contains("\\u0001ctl\\u001f"));
        assert!(j.contains("λ → ∞"));
        // No raw control bytes may survive into the payload.
        assert!(j.chars().all(|c| (c as u32) >= 0x20));
    }
}
