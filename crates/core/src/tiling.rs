//! Crossbar tiling: mapping one large weight matrix onto several small
//! crossbar pairs whose outputs are summed digitally.
//!
//! Extension beyond the paper, motivated directly by its own findings:
//! Table 1 shows IR-drop wrecking large monolithic arrays while small
//! ones stay healthy, and Fig. 3 shows the update-rate skew exploding
//! past ~128 rows. Splitting the 784 input rows into, say, 128-row tiles
//! keeps every physical array inside the benign regime at the cost of a
//! digital adder per column — the standard architectural answer in
//! crossbar accelerators.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::classifier::accuracy_with;
use vortex_nn::dataset::Dataset;

use crate::amp::greedy::RowMapping;
use crate::pipeline::{HardwareEnv, HardwareEvaluation, ReadFidelity};
use crate::vortex::{fabricate_pair, pretest_and_plan, program_mapped_with, AmpChipOptions};
use crate::{CoreError, Result};

/// Tiled hardware evaluator.
///
/// # Example
///
/// ```
/// use vortex_core::tiling::TiledEvaluator;
///
/// # fn main() -> Result<(), vortex_core::CoreError> {
/// let tiler = TiledEvaluator::new(64)?;
/// let ranges = tiler.tile_ranges(196);
/// assert_eq!(ranges.len(), 4);                 // 64+64+64+4
/// assert_eq!(ranges.last().unwrap().len(), 4); // remainder tile
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledEvaluator {
    /// Rows per tile (the last tile takes the remainder).
    pub tile_rows: usize,
    /// Optional per-tile AMP (pre-test + greedy mapping + redundancy).
    pub amp: Option<AmpChipOptions>,
}

impl TiledEvaluator {
    /// Creates an evaluator with plain (identity-mapped) tiles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `tile_rows == 0`.
    pub fn new(tile_rows: usize) -> Result<Self> {
        if tile_rows == 0 {
            return Err(CoreError::InvalidParameter {
                name: "tile_rows",
                requirement: "must be positive",
            });
        }
        Ok(Self {
            tile_rows,
            amp: None,
        })
    }

    /// Adds per-tile AMP.
    pub fn with_amp(mut self, amp: AmpChipOptions) -> Self {
        self.amp = Some(amp);
        self
    }

    /// Row ranges of each tile for an `n`-row weight matrix.
    pub fn tile_ranges(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + self.tile_rows).min(n);
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Programs `weights` across tiles on fresh hardware and measures the
    /// test rate, repeated over `mc_draws` fabrications.
    ///
    /// # Errors
    ///
    /// Propagates fabrication, pre-test, programming and readout errors.
    pub fn evaluate(
        &self,
        weights: &Matrix,
        mean_abs_input: &[f64],
        env: &HardwareEnv,
        test: &Dataset,
        mc_draws: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<HardwareEvaluation> {
        if mc_draws == 0 {
            return Err(CoreError::InvalidParameter {
                name: "mc_draws",
                requirement: "must be positive",
            });
        }
        if mean_abs_input.len() != weights.rows() {
            return Err(CoreError::InvalidParameter {
                name: "mean_abs_input",
                requirement: "length must match the weight-matrix rows",
            });
        }
        let ranges = self.tile_ranges(weights.rows());
        let mut per_draw = Vec::with_capacity(mc_draws);
        for _ in 0..mc_draws {
            let mut draw_rng = rng.split();
            per_draw.push(self.evaluate_one(
                weights,
                mean_abs_input,
                &ranges,
                env,
                test,
                &mut draw_rng,
            )?);
        }
        let mean_test_rate = per_draw.iter().sum::<f64>() / per_draw.len() as f64;
        Ok(HardwareEvaluation {
            mean_test_rate,
            per_draw,
        })
    }

    fn evaluate_one(
        &self,
        weights: &Matrix,
        mean_abs_input: &[f64],
        ranges: &[std::ops::Range<usize>],
        env: &HardwareEnv,
        test: &Dataset,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<f64> {
        use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};

        let cols = weights.cols();
        let mean_input = test.mean_input();
        // Tiles share one ADC sized for the tile row count; the tile
        // inputs are already digital, so no per-tile DAC.
        let mut options = ReadOptions::new(match env.read_fidelity {
            ReadFidelity::Ideal => Fidelity::Ideal,
            ReadFidelity::FastIrDrop => Fidelity::Calibrated,
            ReadFidelity::ExactIrDrop => Fidelity::Exact,
        });
        options.adc = env.read_adc(self.tile_rows)?;
        let mut tiles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let rows: Vec<usize> = range.clone().collect();
            let tile_weights = weights.select_rows(&rows);
            let tile_mean_abs: Vec<f64> = rows.iter().map(|&i| mean_abs_input[i]).collect();
            let physical_rows =
                tile_weights.rows() + self.amp.as_ref().map_or(0, |a| a.redundant_rows);
            let mut pair = fabricate_pair(cols, physical_rows, env, rng)?;
            let (mapping, mults) = match &self.amp {
                Some(opts) => {
                    let plan =
                        pretest_and_plan(&mut pair, &tile_weights, &tile_mean_abs, opts, env, rng)?;
                    let mults = if opts.pretest_compensation {
                        Some((plan.mult_pos.clone(), plan.mult_neg.clone()))
                    } else {
                        None
                    };
                    (plan.mapping, mults)
                }
                None => (
                    RowMapping::identity_into(tile_weights.rows(), physical_rows),
                    None,
                ),
            };
            program_mapped_with(
                &mut pair,
                &tile_weights,
                &mapping,
                mults.as_ref().map(|(p, n)| (p, n)),
                env,
                rng,
            )?;
            let tile_ref: Vec<f64> = range.clone().map(|i| mean_input[i]).collect();
            let model = CompiledModel::compile(
                &pair.freeze(),
                mapping.assignment(),
                &options,
                Some(&tile_ref),
            )
            .map_err(CoreError::Runtime)?;
            tiles.push((range.clone(), model));
        }

        let mut failed = false;
        let acc = accuracy_with(test, |x| {
            let mut y = vec![0.0; cols];
            for (range, model) in &tiles {
                let x_tile: Vec<f64> = range.clone().map(|i| x[i]).collect();
                match model.scores(&x_tile) {
                    Ok(part) => {
                        for (acc_j, p) in y.iter_mut().zip(&part) {
                            *acc_j += p;
                        }
                    }
                    Err(_) => failed = true,
                }
            }
            y
        });
        if failed {
            return Err(CoreError::InvalidParameter {
                name: "readout",
                requirement: "tiled hardware read failed during scoring",
            });
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amp::greedy::RowMapping as Mapping;
    use crate::amp::sensitivity::mean_abs_inputs;
    use crate::pipeline::evaluate_hardware;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::gdt::GdtTrainer;
    use vortex_nn::split::stratified_split;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(808)
    }

    fn setup() -> (Dataset, Dataset, Matrix) {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 81).unwrap();
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        let w = GdtTrainer {
            epochs: 10,
            ..Default::default()
        }
        .train(&s.train)
        .unwrap();
        (s.train, s.test, w)
    }

    #[test]
    fn tile_ranges_cover_exactly() {
        let t = TiledEvaluator::new(50).unwrap();
        let ranges = t.tile_ranges(196);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..50);
        assert_eq!(ranges[3], 150..196);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 196);
        assert!(TiledEvaluator::new(0).is_err());
    }

    #[test]
    fn tiled_matches_monolithic_on_ideal_hardware() {
        let (train, test, w) = setup();
        let env = HardwareEnv::ideal();
        let mean_abs = mean_abs_inputs(&train);
        let mono = evaluate_hardware(&w, &Mapping::identity(w.rows()), &env, &test, 1, &mut rng())
            .unwrap();
        let tiled = TiledEvaluator::new(64)
            .unwrap()
            .evaluate(&w, &mean_abs, &env, &test, 1, &mut rng())
            .unwrap();
        assert!(
            (tiled.mean_test_rate - mono.mean_test_rate).abs() < 0.05,
            "tiled {} vs monolithic {}",
            tiled.mean_test_rate,
            mono.mean_test_rate
        );
    }

    #[test]
    fn tiling_mitigates_heavy_ir_drop() {
        let (train, test, w) = setup();
        // Strong wires, uncompensated programming: the monolithic array
        // suffers; 32-row tiles keep every path short.
        let env = HardwareEnv::ideal().with_ir_drop(12.0);
        let mean_abs = mean_abs_inputs(&train);
        let mono = evaluate_hardware(&w, &Mapping::identity(w.rows()), &env, &test, 2, &mut rng())
            .unwrap();
        let tiled = TiledEvaluator::new(32)
            .unwrap()
            .evaluate(&w, &mean_abs, &env, &test, 2, &mut rng())
            .unwrap();
        assert!(
            tiled.mean_test_rate > mono.mean_test_rate,
            "tiled {} should beat monolithic {} under heavy IR-drop",
            tiled.mean_test_rate,
            mono.mean_test_rate
        );
    }

    #[test]
    fn tiled_amp_runs_under_variation() {
        let (train, test, w) = setup();
        let env = HardwareEnv::with_sigma(0.8).unwrap();
        let mean_abs = mean_abs_inputs(&train);
        let plain = TiledEvaluator::new(64)
            .unwrap()
            .evaluate(&w, &mean_abs, &env, &test, 2, &mut rng())
            .unwrap();
        let amped = TiledEvaluator::new(64)
            .unwrap()
            .with_amp(AmpChipOptions {
                redundant_rows: 8,
                ..AmpChipOptions::default()
            })
            .evaluate(&w, &mean_abs, &env, &test, 2, &mut rng())
            .unwrap();
        assert!(
            amped.mean_test_rate >= plain.mean_test_rate - 0.03,
            "per-tile AMP {} vs plain {}",
            amped.mean_test_rate,
            plain.mean_test_rate
        );
    }

    #[test]
    fn evaluate_validates_inputs() {
        let (_, test, w) = setup();
        let env = HardwareEnv::ideal();
        let t = TiledEvaluator::new(64).unwrap();
        assert!(t
            .evaluate(&w, &vec![0.5; w.rows()], &env, &test, 0, &mut rng())
            .is_err());
        assert!(t
            .evaluate(&w, &[0.5; 3], &env, &test, 1, &mut rng())
            .is_err());
    }
}
