//! Equivalence and behaviour tests for the [`CompileRequest`] builder.
//!
//! The legacy positional compile methods are thin delegates over the
//! request builder; these tests pin that equivalence at the strongest
//! available granularity — byte equality of the serialized artifact.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::{CompileOptions, HardwareEnv};
use vortex_core::CoreError;
use vortex_device::cell::CellKind;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::executor::Parallelism;
use vortex_nn::gdt::GdtTrainer;
use vortex_xbar::encoding::{EncodingScheme, EncodingSpec};

fn rng() -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(123)
}

fn small_setup() -> (Dataset, Matrix) {
    let data = SynthDigits::generate(&DatasetConfig::tiny(), 7).unwrap();
    let w = GdtTrainer {
        epochs: 10,
        ..Default::default()
    }
    .train(&data)
    .unwrap();
    (data, w)
}

#[test]
fn legacy_compile_is_bit_equal_to_the_request_builder() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.4).unwrap().with_ir_drop(4.0);
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let legacy = compiler.compile(&w, &mapping, &mut rng()).unwrap();
    let via_request = compiler
        .request(&w, &mapping)
        .compile_with(&mut rng())
        .unwrap();
    assert_eq!(legacy.to_bytes(), via_request.to_bytes());
}

#[test]
fn compile_seeded_is_bit_equal_to_a_seeded_request() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.3).unwrap();
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let legacy = compiler.compile_seeded(&w, &mapping, 77).unwrap();
    let via_request = compiler.request(&w, &mapping).seed(77).compile().unwrap();
    assert_eq!(legacy.to_bytes(), via_request.to_bytes());
}

#[test]
fn replica_compilation_is_parallelism_invariant() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.3).unwrap();
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let serial = compiler.compile_replicas(&w, &mapping, 9, 4).unwrap();
    let parallel = compiler
        .request(&w, &mapping)
        .seed(9)
        .parallelism(Parallelism::Fixed(4))
        .compile_replicas(4)
        .unwrap();
    assert_eq!(serial.len(), parallel.len());
    for ((sa, ma), (sb, mb)) in serial.iter().zip(&parallel) {
        assert_eq!(sa, sb);
        assert_eq!(ma.to_bytes(), mb.to_bytes());
    }
}

#[test]
fn with_options_equals_the_fluent_setters() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.2).unwrap();
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let mut options = CompileOptions::new();
    options.encoding = EncodingSpec::MultiLevelCell { bits: 4 };
    options.seed = Some(5);
    let a = compiler
        .request(&w, &mapping)
        .with_options(options.clone())
        .compile()
        .unwrap();
    let b = compiler
        .request(&w, &mapping)
        .encoding(EncodingSpec::MultiLevelCell { bits: 4 })
        .seed(5)
        .compile()
        .unwrap();
    assert_eq!(
        compiler
            .request(&w, &mapping)
            .with_options(options)
            .options()
            .seed,
        Some(5)
    );
    assert_eq!(a.to_bytes(), b.to_bytes());
}

#[test]
fn mlc_encoding_records_a_uniform_level_table() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.2).unwrap();
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let model = compiler
        .request(&w, &mapping)
        .encoding(EncodingSpec::MultiLevelCell { bits: 4 })
        .seed(3)
        .compile()
        .unwrap();
    let table = model.encoding();
    assert_eq!(table.scheme(), EncodingScheme::MultiLevel);
    assert_eq!(table.rows(), mapping.physical_rows());
    assert!(table.levels().iter().all(|&l| l == 16));
    assert!((table.effective_bits() - 4.0).abs() < 1e-12);
}

#[test]
fn adaptive_encoding_splits_rows_between_the_two_budgets() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.2).unwrap();
    let compiler = env.compiler().with_calibration(&data.mean_input());

    let model = compiler
        .request(&w, &mapping)
        .encoding(EncodingSpec::AdaptiveRowQuant {
            low_bits: 2,
            high_bits: 6,
            fine_fraction: 0.5,
        })
        .seed(3)
        .compile()
        .unwrap();
    let table = model.encoding();
    assert_eq!(table.scheme(), EncodingScheme::AdaptiveRow);
    let fine = table.levels().iter().filter(|&&l| l == 64).count();
    let coarse = table.levels().iter().filter(|&&l| l == 4).count();
    assert_eq!(fine + coarse, table.rows());
    let expected_fine = (0.5 * table.rows() as f64).round() as usize;
    assert_eq!(fine, expected_fine);
}

#[test]
fn one_t1r_cell_compiles_and_differs_from_the_passive_array() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let mut env = HardwareEnv::with_sigma(0.2).unwrap();
    let one_r = env
        .compiler()
        .with_calibration(&data.mean_input())
        .compile_seeded(&w, &mapping, 11)
        .unwrap();
    env.cell = CellKind::one_t1r(3.0e3).unwrap();
    let one_t1r = env
        .compiler()
        .with_calibration(&data.mean_input())
        .compile_seeded(&w, &mapping, 11)
        .unwrap();
    // The access transistor reshapes the frozen conductances …
    assert_ne!(one_r.to_bytes(), one_t1r.to_bytes());
    // … but NEAT pre-distortion keeps the classifier serviceable.
    let acc = one_t1r.accuracy(&data).unwrap();
    assert!(acc > 0.5, "1T-1R accuracy collapsed to {acc}");
}

#[test]
fn canary_inputs_ride_the_request() {
    let (data, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::with_sigma(0.2).unwrap();
    let probes: Vec<Vec<f64>> = (0..3).map(|k| data.image(k).to_vec()).collect();
    let model = env
        .compiler()
        .with_calibration(&data.mean_input())
        .request(&w, &mapping)
        .seed(21)
        .canary_inputs(probes)
        .compile()
        .unwrap();
    let canary = model.canary().expect("request should freeze a canary set");
    assert_eq!(canary.len(), 3);
    assert!((model.canary_accuracy().unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn missing_seed_is_a_typed_error() {
    let (_, w) = small_setup();
    let mapping = RowMapping::identity(w.rows());
    let env = HardwareEnv::ideal();
    let compiler = env.compiler();
    let err = compiler.request(&w, &mapping).compile().unwrap_err();
    assert!(matches!(
        err,
        CoreError::InvalidParameter { name: "seed", .. }
    ));
}
