//! Property-based tests for the Vortex core algorithms.

use proptest::prelude::*;
use vortex_core::amp::greedy::{greedy_map, RowMapping};
use vortex_core::amp::swv;
use vortex_core::rho::RhoConfig;
use vortex_core::vat::inject_variation;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

fn matrix(rows: usize, cols: usize, lo: f64, hi: f64) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(lo..hi, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_mapping_preserves_outputs(w in matrix(5, 3, -2.0, 2.0),
                                     x in proptest::collection::vec(0.0..1.0f64, 5),
                                     seed in proptest::num::u64::ANY) {
        // Any injective mapping with zero-filled unused rows preserves
        // xᵀ·W exactly — the correctness core of AMP.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let physical = 5 + rng.next_below(4);
        let chosen = rng.sample_indices(physical, 5);
        let mapping = RowMapping::from_assignment(chosen, physical).unwrap();
        let y_logical = w.vecmat(&x);
        let y_phys = mapping
            .apply_to_rows(&w, 0.0)
            .vecmat(&mapping.route_input(&x));
        for (a, b) in y_logical.iter().zip(&y_phys) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_mapping_is_injective_and_complete(sens in proptest::collection::vec(0.0..10.0f64, 6),
                                                swv_vals in proptest::collection::vec(0.0..5.0f64, 6 * 9)) {
        let swv_m = Matrix::from_vec(6, 9, swv_vals).unwrap();
        let mapping = greedy_map(&sens, &swv_m).unwrap();
        prop_assert_eq!(mapping.logical_rows(), 6);
        prop_assert_eq!(mapping.physical_rows(), 9);
        let mut seen = [false; 9];
        for p in 0..6 {
            let q = mapping.physical_row(p);
            prop_assert!(q < 9);
            prop_assert!(!seen[q], "physical row {q} used twice");
            seen[q] = true;
        }
    }

    #[test]
    fn greedy_most_sensitive_row_gets_its_best_available(sens in proptest::collection::vec(0.1..10.0f64, 5),
                                                          swv_vals in proptest::collection::vec(0.0..5.0f64, 5 * 7)) {
        // The first-visited (most sensitive) row always receives its
        // globally cheapest physical row.
        let swv_m = Matrix::from_vec(5, 7, swv_vals).unwrap();
        let mapping = greedy_map(&sens, &swv_m).unwrap();
        let most = (0..5)
            .max_by(|&a, &b| sens[a].partial_cmp(&sens[b]).unwrap()
                .then(b.cmp(&a)))
            .unwrap();
        let assigned_cost = swv_m[(most, mapping.physical_row(most))];
        let best_cost = (0..7)
            .map(|q| swv_m[(most, q)])
            .fold(f64::INFINITY, f64::min);
        prop_assert!((assigned_cost - best_cost).abs() < 1e-12);
    }

    #[test]
    fn swv_is_nonnegative_and_zero_iff_perfect(w in matrix(3, 4, -2.0, 2.0)) {
        let perfect = Matrix::filled(5, 4, 1.0);
        let m = swv::swv_matrix(&w, &perfect).unwrap();
        for p in 0..3 {
            for q in 0..5 {
                prop_assert!(m[(p, q)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn swv_scales_linearly_with_weights(w in matrix(2, 3, -2.0, 2.0),
                                        mult in matrix(2, 3, 0.2, 3.0),
                                        k in 0.1..5.0f64) {
        let base = swv::swv_matrix(&w, &mult).unwrap();
        let scaled = swv::swv_matrix(&w.scaled(k), &mult).unwrap();
        for p in 0..2 {
            for q in 0..2 {
                prop_assert!((scaled[(p, q)] - k * base[(p, q)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rho_is_monotone_in_confidence(sigma in 0.01..1.5f64, n in 1usize..500,
                                     c1 in 0.05..0.9f64, dc in 0.01..0.09f64) {
        let lo = RhoConfig { confidence: c1 }.rho(sigma, n).unwrap();
        let hi = RhoConfig { confidence: c1 + dc }.rho(sigma, n).unwrap();
        prop_assert!(hi >= lo);
    }

    #[test]
    fn inject_variation_preserves_zero_and_sign(w in matrix(4, 3, -1.0, 1.0),
                                                sigma in 0.0..1.0f64,
                                                seed in proptest::num::u64::ANY) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let wv = inject_variation(&w, sigma, &mut rng);
        for (a, b) in w.as_slice().iter().zip(wv.as_slice()) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            } else {
                prop_assert_eq!(a.signum(), b.signum());
                prop_assert!(*b != 0.0);
            }
        }
    }

    #[test]
    fn identity_mapping_routing_is_identity(x in proptest::collection::vec(-3.0..3.0f64, 1..20)) {
        let mapping = RowMapping::identity(x.len());
        prop_assert_eq!(mapping.route_input(&x), x.clone());
        let w = Matrix::from_vec(x.len(), 1, x.clone()).unwrap();
        prop_assert_eq!(mapping.apply_to_rows(&w, 9.9), w);
    }
}
