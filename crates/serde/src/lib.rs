//! Minimal offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this facade supplies
//! just enough surface for the workspace to compile: the `Serialize` /
//! `Deserialize` traits (never invoked — no serializer backend exists
//! here) and same-named no-op derive macros. Swapping back to the real
//! `serde` is a one-line change in the workspace manifest.

/// Marker trait mirroring `serde::Serialize`. No methods: the workspace
/// never drives an actual serializer through this stub.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_stub_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for common `use serde::de::...` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        x: f64,
        tag: String,
    }

    #[test]
    fn derives_expand_without_error() {
        let p = Probe {
            x: 1.5,
            tag: "ok".into(),
        };
        assert_eq!(p.x, 1.5);
        assert_eq!(p.tag, "ok");
    }
}
