//! Slice-based vector kernels.
//!
//! Vectors throughout the workspace are plain `Vec<f64>` / `&[f64]`; this
//! module provides the handful of BLAS-1 style kernels everything else is
//! written in terms of.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// 1-norm `‖x‖₁ = Σ|xᵢ|`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|a| a.abs()).sum()
}

/// Infinity norm `max |xᵢ|` (0 for an empty slice).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &a| m.max(a.abs()))
}

/// In-place AXPY: `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling: `x ← alpha·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise product `z = x ∘ y` (Hadamard).
///
/// This is the `V⁽ⁱ⁾` vector of the paper's Eq. (7): the VAT penalty bound
/// is `ρ·‖x ∘ w‖₂`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hadamard(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// Element-wise sum `z = x + y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise difference `z = x − y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Index of the maximum element; ties resolve to the lowest index.
///
/// Returns `None` for an empty slice or if every element is NaN.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; ties resolve to the lowest index.
///
/// Returns `None` for an empty slice or if every element is NaN.
pub fn argmin(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Linear interpolation between `a` and `b` at parameter `t ∈ [0,1]`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Evenly spaced grid of `n` points covering `[lo, hi]` inclusive.
///
/// Returns `[lo]` when `n == 1`; an empty vector when `n == 0`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => (0..n)
            .map(|i| lerp(lo, hi, i as f64 / (n - 1) as f64))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn hadamard_and_add_sub() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(hadamard(&x, &y), vec![4.0, 10.0, 18.0]);
        assert_eq!(add(&x, &y), vec![5.0, 7.0, 9.0]);
        assert_eq!(sub(&y, &x), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn argmax_ties_and_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmin_basic() {
        assert_eq!(argmin(&[2.0, -1.0, 5.0]), Some(1));
        assert_eq!(argmin(&[1.0, 1.0]), Some(0));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
