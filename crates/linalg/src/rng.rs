//! Deterministic, seedable pseudo-random number generation.
//!
//! Every stochastic component of the workspace (device variation draws,
//! dataset synthesis, Monte-Carlo loops) takes an explicit generator so that
//! experiments are exactly reproducible from a seed. The generator is
//! xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 as its authors
//! recommend.

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
///
/// Also usable standalone for cheap, low-quality streams (e.g. hashing a
/// coordinate pair into a jitter value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ generator: fast, high-quality, 256-bit state.
///
/// # Example
///
/// ```
/// use vortex_linalg::rng::Xoshiro256PlusPlus;
///
/// let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
/// let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the generator from a single 64-bit value via SplitMix64.
    ///
    /// Two generators with the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one invalid state; SplitMix64 cannot produce
        // four consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Returns the raw 256-bit state, for checkpointing.
    ///
    /// Together with [`Xoshiro256PlusPlus::from_state`] this lets a long
    /// stochastic computation (e.g. an on-device training job) persist its
    /// generator mid-stream and resume bit-exactly after a crash.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`Xoshiro256PlusPlus::state`].
    ///
    /// Returns `None` for the all-zero state, which is the one state
    /// xoshiro256++ cannot occupy (the generator would emit zeros forever);
    /// a checkpoint carrying it is corrupt by construction.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0, 0, 0, 0] {
            None
        } else {
            Some(Self { s })
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below requires n > 0");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone: retry only when in the biased band.
            let t = n.wrapping_neg() % n;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bool_with_probability(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_below(i + 1);
            data.swap(i, j);
        }
    }

    /// Returns `k` distinct indices drawn uniformly from `0..n`
    /// (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Splits off an independent child generator.
    ///
    /// Useful to give each Monte-Carlo trial its own stream while keeping
    /// the parent reproducible.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 1234567 (computed from the published
        // SplitMix64 algorithm).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let _ = rng.next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn sample_indices_too_many_panics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let _ = rng.sample_indices(3, 4);
    }

    #[test]
    fn split_streams_are_independent_seeds() {
        let mut parent = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.range_f64(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn bool_with_probability_extremes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        assert!(!(0..100).any(|_| rng.bool_with_probability(0.0)));
        assert!((0..100).all(|_| rng.bool_with_probability(1.0)));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let mut b = Xoshiro256PlusPlus::from_state(snapshot).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_rejected() {
        assert!(Xoshiro256PlusPlus::from_state([0, 0, 0, 0]).is_none());
        assert!(Xoshiro256PlusPlus::from_state([0, 0, 0, 1]).is_some());
    }
}
