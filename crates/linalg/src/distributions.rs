//! Probability distributions used by the device-variation models.
//!
//! The paper models memristor parametric variation as lognormal
//! (`r → e^θ · r_nominal`, `θ ~ N(0, σ²)`, after Lee et al. VLSIT'12) and
//! switching variation as a small additive Gaussian. This module provides
//! exactly those samplers plus the small set of helpers the dataset
//! generator needs.

use crate::rng::Xoshiro256PlusPlus;
use crate::{LinalgError, Result};

/// Normal (Gaussian) distribution `N(mean, std²)`, sampled with the
/// Marsaglia polar method.
///
/// # Example
///
/// ```
/// use vortex_linalg::rng::Xoshiro256PlusPlus;
/// use vortex_linalg::distributions::Normal;
///
/// # fn main() -> Result<(), vortex_linalg::LinalgError> {
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let n = Normal::new(5.0, 2.0)?;
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `std < 0` or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(LinalgError::InvalidParameter {
                name: "mean",
                requirement: "must be finite",
            });
        }
        if !(std.is_finite() && std >= 0.0) {
            return Err(LinalgError::InvalidParameter {
                name: "std",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(Self { mean, std })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// Fills a vector with `n` independent samples.
    pub fn sample_vec(&self, rng: &mut Xoshiro256PlusPlus, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws one standard-normal sample via the Marsaglia polar method.
pub fn standard_normal(rng: &mut Xoshiro256PlusPlus) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Lognormal distribution: `exp(N(mu, sigma²))`.
///
/// This is the paper's parametric-variation model: a device programmed to
/// nominal resistance `r` lands at `r · e^θ` with `θ ~ N(0, σ²)`, i.e. the
/// multiplicative factor is `LogNormal::new(0.0, σ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_normal: Normal,
}

impl LogNormal {
    /// Creates a lognormal with the given log-domain mean and std.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] under the same conditions
    /// as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self {
            log_normal: Normal::new(mu, sigma)?,
        })
    }

    /// Log-domain mean `mu`.
    pub fn mu(&self) -> f64 {
        self.log_normal.mean()
    }

    /// Log-domain standard deviation `sigma`.
    pub fn sigma(&self) -> f64 {
        self.log_normal.std()
    }

    /// Draws one sample (always strictly positive).
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        self.log_normal.sample(rng).exp()
    }

    /// Analytic mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu() + 0.5 * self.sigma() * self.sigma()).exp()
    }

    /// Analytic median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu().exp()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `lo > hi` or a bound is
    /// not finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(LinalgError::InvalidParameter {
                name: "bounds",
                requirement: "lo <= hi, both finite",
            });
        }
        Ok(Self { lo, hi })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Standard-normal cumulative distribution function Φ(x),
/// accurate to ~1e-7 (Abramowitz & Stegun 7.1.26 on erf).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function, |error| < 1.5e-7 (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(2024)
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments_match() {
        let mut r = rng();
        let n = Normal::new(3.0, 2.0).unwrap();
        let xs = n.sample_vec(&mut r, 200_000);
        let m = stats::mean(&xs);
        let s = stats::std_dev(&xs);
        assert!((m - 3.0).abs() < 0.03, "mean {m}");
        assert!((s - 2.0).abs() < 0.03, "std {s}");
    }

    #[test]
    fn zero_std_is_degenerate() {
        let mut r = rng();
        let n = Normal::new(7.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut r), 7.0);
        }
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut r = rng();
        let ln = LogNormal::new(0.0, 0.6).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| ln.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let med = stats::quantile(&xs, 0.5);
        // Median of LogNormal(0, σ) is exp(0) = 1.
        assert!((med - 1.0).abs() < 0.02, "median {med}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let mut r = rng();
        let ln = LogNormal::new(0.2, 0.4).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| ln.sample(&mut r)).collect();
        let m = stats::mean(&xs);
        assert!((m - ln.mean()).abs() / ln.mean() < 0.02, "mean {m}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        let u = Uniform::new(2.0, 5.0).unwrap();
        for _ in 0..1000 {
            let x = u.sample(&mut r);
            assert!((2.0..5.0).contains(&x));
        }
        assert!(Uniform::new(5.0, 2.0).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        // Φ(1.96) ≈ 0.975.
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn standard_normal_tail_fractions() {
        let mut r = rng();
        let n = 100_000;
        let beyond_2: usize = (0..n)
            .filter(|_| standard_normal(&mut r).abs() > 2.0)
            .count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "frac {frac}");
    }
}
