//! Dense row-major matrices.
//!
//! [`Matrix`] is the workhorse container for weight matrices, conductance
//! maps and variation fields. It is deliberately simple: row-major
//! `Vec<f64>` storage, panicking indexed access via `mat[(i, j)]`, and the
//! small set of operations the simulator needs.

use serde::{Deserialize, Serialize};

use crate::{vector, LinalgError, Result};

/// Dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use vortex_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// let y = a.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with every element equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix element-by-element from a closure `f(i, j)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows: ragged rows"
        );
        let data = rows.iter().flatten().copied().collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the flat row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `values`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols` or `values.len() != rows`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert!(j < self.cols, "column index {j} out of bounds");
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Matrix–vector product `y = A·x` (`x` has `cols` entries).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// Row-vector–matrix product `y = xᵀ·A` (`x` has `rows` entries).
    ///
    /// This is the crossbar forward computation of the paper (`y = x·W`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat: length mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            vector::axpy(xi, self.row(i), &mut y);
        }
        y
    }

    /// Matrix product `C = A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = c.row_mut(i);
                vector::axpy(aik, brow, crow);
            }
        }
        c
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scaled copy `alpha · self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        self.map(|v| alpha * v)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Returns a copy whose rows are permuted so that output row `i` is
    /// input row `perm[i]`.
    ///
    /// Row permutation together with the matching input permutation leaves
    /// `xᵀ·W` invariant — the property AMP's row remapping relies on
    /// (Fig. 6 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != rows` or `perm` contains an out-of-range
    /// index.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.rows, "permute_rows: length mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (i, &src) in perm.iter().enumerate() {
            assert!(src < self.rows, "permute_rows: index {src} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Extracts the sub-matrix of the given `row_indices` (all columns).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, row_indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_indices.len(), self.cols);
        for (i, &src) in row_indices.iter().enumerate() {
            assert!(src < self.rows, "select_rows: index {src} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            if self.cols > max_rows {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "⋮")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.as_slice()[5], 5.0);
    }

    #[test]
    fn identity_matvec_is_input() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(i3.matvec(&x), x);
        assert_eq!(i3.vecmat(&x), x);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let x = vec![1.0, 0.5, -1.0, 2.0];
        let via_vecmat = a.vecmat(&x);
        let via_transpose = a.transpose().matvec(&x);
        for (u, v) in via_vecmat.iter().zip(&via_transpose) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn permute_rows_preserves_vecmat_with_permuted_input() {
        // The AMP invariant: swapping rows of W together with the inputs
        // leaves x·W unchanged.
        let w = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let x = vec![0.5, -1.0, 2.0, 3.0];
        let perm = vec![2, 0, 3, 1];
        let wp = w.permute_rows(&perm);
        let xp: Vec<f64> = perm.iter().map(|&p| x[p]).collect();
        let y0 = w.vecmat(&x);
        let y1 = wp.vecmat(&xp);
        for (a, b) in y0.iter().zip(&y1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[7.0, 8.0, 9.0]);
        assert_eq!(m.col(1), vec![7.0, 8.0, 9.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.hadamard(&b), Matrix::filled(2, 2, 6.0));
        assert_eq!(a.add(&b), Matrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&b), Matrix::filled(2, 2, 1.0));
        assert_eq!(a.scaled(-1.0), Matrix::filled(2, 2, -3.0));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn vstack_shapes() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(1, 3, 2.0);
        let c = a.vstack(&b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.row(2), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn select_rows_subset() {
        let m = Matrix::from_fn(5, 2, |i, _| i as f64);
        let s = m.select_rows(&[4, 0]);
        assert_eq!(s.row(0), &[4.0, 4.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m}");
        assert!(s.contains("Matrix 100x100"));
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let json = serde_json_like(&m);
        assert!(json.contains("rows"));
    }

    // Minimal check that Serialize derives exist without pulling serde_json.
    fn serde_json_like(m: &Matrix) -> String {
        format!(
            "rows={} cols={} n={}",
            m.rows(),
            m.cols(),
            m.as_slice().len()
        )
    }
}
