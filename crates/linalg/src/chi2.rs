//! Chi-square distribution: CDF and inverse CDF.
//!
//! VAT bounds the variation penalty with `‖θ‖₂ ≤ ρ` at a chosen confidence
//! level, where `‖θ‖₂²` of `n` i.i.d. `N(0, σ²)` variables is `σ²·χ²(n)`
//! (Eq. (7) of the paper). The confidence radius is therefore
//! `ρ = σ·sqrt(chi2_quantile(confidence, n))`, computed here.
//!
//! Implementation: log-gamma by the Lanczos approximation, the regularized
//! lower incomplete gamma `P(a, x)` by series/continued-fraction (Numerical
//! Recipes style), the quantile by a Wilson–Hilferty initial guess refined
//! with Newton iterations on the CDF.

use crate::{LinalgError, Result};

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)` — converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for `Q(a, x) = 1 − P(a, x)` — for `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Chi-square CDF with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
pub fn chi2_cdf(x: f64, dof: usize) -> f64 {
    assert!(dof > 0, "chi2_cdf requires dof > 0");
    gamma_p(dof as f64 / 2.0, x / 2.0)
}

/// Chi-square quantile (inverse CDF) at probability `p` with `dof` degrees
/// of freedom.
///
/// Uses the Wilson–Hilferty cube-root normal approximation as the initial
/// guess and polishes with safeguarded Newton iterations on [`chi2_cdf`].
///
/// # Errors
///
/// Returns [`LinalgError::InvalidParameter`] if `p ∉ (0, 1)` or `dof == 0`.
pub fn chi2_quantile(p: f64, dof: usize) -> Result<f64> {
    if dof == 0 {
        return Err(LinalgError::InvalidParameter {
            name: "dof",
            requirement: "must be positive",
        });
    }
    if !(p > 0.0 && p < 1.0) {
        return Err(LinalgError::InvalidParameter {
            name: "p",
            requirement: "must lie strictly between 0 and 1",
        });
    }
    let k = dof as f64;

    // Wilson–Hilferty: χ²(k) ≈ k·(1 − 2/(9k) + z·sqrt(2/(9k)))³.
    let z = normal_quantile(p);
    let c = 2.0 / (9.0 * k);
    let mut x = k * (1.0 - c + z * c.sqrt()).powi(3);
    if !(x.is_finite() && x > 0.0) {
        x = k; // Fall back to the mean.
    }

    // Newton on F(x) − p with the chi-square PDF as derivative, with
    // bisection safeguarding against leaving (0, ∞).
    let mut lo = 0.0_f64;
    let mut hi = f64::INFINITY;
    for _ in 0..100 {
        let f = chi2_cdf(x, dof) - p;
        if f.abs() < 1e-12 {
            break;
        }
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        let pdf = chi2_pdf(x, dof);
        let mut next = if pdf > 1e-300 { x - f / pdf } else { x };
        if !(next > lo && (hi.is_infinite() || next < hi)) || !next.is_finite() {
            next = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                lo.max(x) * 2.0 + 1.0
            };
        }
        if (next - x).abs() <= 1e-12 * x.max(1.0) {
            x = next;
            break;
        }
        x = next;
    }
    Ok(x)
}

/// Chi-square PDF with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof == 0`.
pub fn chi2_pdf(x: f64, dof: usize) -> f64 {
    assert!(dof > 0, "chi2_pdf requires dof > 0");
    if x <= 0.0 {
        return 0.0;
    }
    let k = dof as f64 / 2.0;
    ((k - 1.0) * x.ln() - x / 2.0 - k * std::f64::consts::LN_2 - ln_gamma(k)).exp()
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// (relative error < 1.2e-9), refined with one Halley step.
///
/// # Panics
///
/// Panics if `p ∉ (0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the exact CDF (erf-based).
    let e = crate::distributions::normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(π).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert!((gamma_p(1.0, 50.0) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x_f(x)).exp())).abs() < 1e-10);
        }
    }

    fn x_f(x: f64) -> f64 {
        x
    }

    #[test]
    fn chi2_cdf_reference_values() {
        // From standard chi-square tables.
        // χ²₀.₉₅(1) = 3.8415, χ²₀.₉₅(10) = 18.307, χ²₀.₉₅(100) = 124.342.
        assert!((chi2_cdf(3.8415, 1) - 0.95).abs() < 1e-4);
        assert!((chi2_cdf(18.307, 10) - 0.95).abs() < 1e-4);
        assert!((chi2_cdf(124.342, 100) - 0.95).abs() < 1e-4);
        // Median of χ²(2) is 2·ln2 ≈ 1.3863.
        assert!((chi2_cdf(2.0 * std::f64::consts::LN_2, 2) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn chi2_quantile_inverts_cdf() {
        for &dof in &[1usize, 2, 5, 10, 49, 100, 196, 784] {
            for &p in &[0.05, 0.5, 0.9, 0.95, 0.99] {
                let x = chi2_quantile(p, dof).unwrap();
                let back = chi2_cdf(x, dof);
                assert!(
                    (back - p).abs() < 1e-8,
                    "dof={dof} p={p}: quantile={x}, cdf back={back}"
                );
            }
        }
    }

    #[test]
    fn chi2_quantile_reference_values() {
        assert!((chi2_quantile(0.95, 1).unwrap() - 3.8415).abs() < 1e-3);
        assert!((chi2_quantile(0.95, 10).unwrap() - 18.307).abs() < 1e-3);
        assert!((chi2_quantile(0.99, 5).unwrap() - 15.086).abs() < 1e-3);
        // For large dof the quantile approaches dof.
        let q = chi2_quantile(0.5, 784).unwrap();
        assert!((q - 783.33).abs() < 0.5, "median χ²(784) = {q}");
    }

    #[test]
    fn chi2_quantile_rejects_bad_input() {
        assert!(chi2_quantile(0.0, 5).is_err());
        assert!(chi2_quantile(1.0, 5).is_err());
        assert!(chi2_quantile(0.5, 0).is_err());
    }

    #[test]
    fn chi2_pdf_integrates_roughly_to_one() {
        let dof = 4;
        let dx = 0.01;
        let total: f64 = (0..4000).map(|i| chi2_pdf(i as f64 * dx, dof) * dx).sum();
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn normal_quantile_reference() {
        assert!(normal_quantile(0.5).abs() < 1e-7);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326348).abs() < 1e-4);
        assert!((normal_quantile(1e-6) + 4.753424).abs() < 1e-3);
    }

    #[test]
    fn rho_for_vat_is_monotone_in_dof() {
        // ρ = sqrt(χ²₀.₉₅(n)) must grow with n — more devices, more total
        // variation budget.
        let mut prev = 0.0;
        for &n in &[10usize, 49, 100, 196, 400, 784] {
            let rho = chi2_quantile(0.95, n).unwrap().sqrt();
            assert!(rho > prev);
            prev = rho;
        }
    }
}
