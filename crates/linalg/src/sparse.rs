//! Compressed-sparse-row matrices.
//!
//! The crossbar IR-drop nodal equations produce large, very sparse,
//! diagonally dominant systems (≤ 6 non-zeros per row: each wire node
//! couples to at most two wire neighbours, one device, and itself). CSR
//! with triplet assembly is all we need.

use crate::{LinalgError, Result};

/// Triplet-based builder for a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed at build time, which matches
/// the usual finite-difference / nodal-analysis stamping workflow.
#[derive(Debug, Clone, Default)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)` (accumulating with prior entries).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, summing duplicates.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut values = Vec::with_capacity(self.entries.len());
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut it = self.entries.into_iter().peekable();
        for r in 0..self.rows {
            while let Some(&(er, ec, _)) = it.peek() {
                if er != r {
                    break;
                }
                let mut sum = 0.0;
                while let Some(&(er2, ec2, v)) = it.peek() {
                    if er2 == r && ec2 == ec {
                        sum += v;
                        it.next();
                    } else {
                        break;
                    }
                }
                if sum != 0.0 {
                    values.push(sum);
                    col_idx.push(ec);
                }
            }
            row_ptr[r + 1] = values.len();
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            values,
            col_idx,
            row_ptr,
        }
    }
}

/// Compressed-sparse-row matrix of `f64`.
///
/// # Example
///
/// ```
/// use vortex_linalg::sparse::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 2.0);
/// b.add(1, 1, 3.0);
/// let m = b.build();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    col_idx: Vec<usize>,
    row_ptr: Vec<usize>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row {i} out of bounds");
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Value at `(i, j)` (0 if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_iter(i)
            .find(|&(c, _)| c == j)
            .map_or(0.0, |(_, v)| v)
    }

    /// Diagonal entries (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "sparse matvec: length mismatch");
        (0..self.rows)
            .map(|i| self.row_iter(i).map(|(c, v)| v * x[c]).sum())
            .collect()
    }

    /// Residual `‖b − A·x‖∞`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.rows, "residual: rhs length mismatch");
        let ax = self.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max)
    }

    /// Converts to a dense [`crate::Matrix`] (testing/small systems only).
    pub fn to_dense(&self) -> crate::Matrix {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m[(i, j)] += v;
            }
        }
        m
    }

    /// Checks (weak row-wise) diagonal dominance — a sufficient condition
    /// for Gauss–Seidel / SOR convergence on our nodal systems.
    pub fn is_diagonally_dominant(&self) -> bool {
        (0..self.rows).all(|i| {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row_iter(i) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            diag >= off - 1e-12
        })
    }
}

/// Validation helper: builds the CSR from explicit parts.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidParameter`] if the CSR invariants are
/// violated (row pointer monotonicity/length, column bounds).
pub fn from_raw_parts(
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    col_idx: Vec<usize>,
    row_ptr: Vec<usize>,
) -> Result<CsrMatrix> {
    if row_ptr.len() != rows + 1 || row_ptr[0] != 0 || *row_ptr.last().unwrap_or(&0) != values.len()
    {
        return Err(LinalgError::InvalidParameter {
            name: "row_ptr",
            requirement: "must have rows+1 entries, start at 0, end at nnz",
        });
    }
    if values.len() != col_idx.len() {
        return Err(LinalgError::InvalidParameter {
            name: "col_idx",
            requirement: "must have the same length as values",
        });
    }
    if row_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(LinalgError::InvalidParameter {
            name: "row_ptr",
            requirement: "must be non-decreasing",
        });
    }
    if col_idx.iter().any(|&c| c >= cols) {
        return Err(LinalgError::InvalidParameter {
            name: "col_idx",
            requirement: "all column indices must be < cols",
        });
    }
    Ok(CsrMatrix {
        rows,
        cols,
        values,
        col_idx,
        row_ptr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 4.0);
        b.add(0, 1, -1.0);
        b.add(1, 0, -1.0);
        b.add(1, 1, 4.0);
        b.add(1, 2, -1.0);
        b.add(2, 1, -1.0);
        b.add(2, 2, 4.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 1), -1.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn zero_entries_skipped() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        b.add(1, 0, 1.0);
        b.add(1, 0, -1.0); // cancels to zero at build
        let m = b.build();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = vec![1.0, 2.0, 3.0];
        let ys = m.matvec(&x);
        let yd = d.matvec(&x);
        assert_eq!(ys, yd);
    }

    #[test]
    fn diagonal_extraction() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn diagonal_dominance_detection() {
        assert!(sample().is_diagonally_dominant());
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 5.0);
        b.add(1, 1, 1.0);
        assert!(!b.build().is_diagonally_dominant());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let m = sample();
        let x = vec![1.0, 1.0, 1.0];
        let b = m.matvec(&x);
        assert!(m.residual_inf(&x, &b) < 1e-15);
    }

    #[test]
    fn from_raw_parts_validation() {
        assert!(from_raw_parts(2, 2, vec![1.0], vec![0], vec![0, 1, 1]).is_ok());
        // bad row_ptr end
        assert!(from_raw_parts(2, 2, vec![1.0], vec![0], vec![0, 0, 0]).is_err());
        // column out of range
        assert!(from_raw_parts(2, 2, vec![1.0], vec![5], vec![0, 1, 1]).is_err());
        // decreasing row_ptr
        assert!(from_raw_parts(2, 2, vec![1.0, 1.0], vec![0, 1], vec![0, 2, 2]).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }

    #[test]
    fn empty_matrix() {
        let b = TripletBuilder::new(0, 0);
        assert!(b.is_empty());
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert!(m.matvec(&[]).is_empty());
    }
}
