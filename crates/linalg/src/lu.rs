//! LU factorization with partial pivoting.
//!
//! Used for small dense systems: validating the iterative nodal solvers in
//! [`crate::iterative`] and solving the reduced circuit models directly when
//! the crossbar is small enough that a direct solve is cheaper.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P·A = L·U` of a square matrix, with partial pivoting.
///
/// # Example
///
/// ```
/// use vortex_linalg::{Matrix, lu::LuFactorization};
///
/// # fn main() -> Result<(), vortex_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]);
/// let lu = LuFactorization::compute(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactorization {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    perm_sign: f64,
}

impl LuFactorization {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if the matrix is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn compute(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "LuFactorization::compute (matrix must be square)",
                expected: n,
                actual: a.cols(),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factorized dimension.
    #[allow(clippy::needless_range_loop)] // triangular solves read x[j] while writing x[i]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "LuFactorization::solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the factorized matrix (column-by-column solve).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::solve`] (cannot occur for a valid
    /// factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot convenience: solve `A·x = b` by LU.
///
/// # Errors
///
/// See [`LuFactorization::compute`] and [`LuFactorization::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactorization::compute(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        match LuFactorization::compute(&a) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactorization::compute(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lu = LuFactorization::compute(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
        let i = Matrix::identity(5);
        assert!((LuFactorization::compute(&i).unwrap().determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![3.0, 6.0, -4.0],
            vec![2.0, 1.0, 8.0],
        ]);
        let inv = LuFactorization::compute(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn random_spd_system() {
        // Build an SPD-ish diagonally dominant matrix and check the solve.
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuFactorization::compute(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
