//! Summary statistics for Monte-Carlo experiment results.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0 for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Quantile via linear interpolation between order statistics
/// (the "type 7" estimator used by NumPy and R).
///
/// `q` is clamped to `[0, 1]`. Returns NaN for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Minimum (NaN for an empty slice). NaN inputs are ignored.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NAN, |m, x| if m.is_nan() || x < m { x } else { m })
}

/// Maximum (NaN for an empty slice). NaN inputs are ignored.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NAN, |m, x| if m.is_nan() || x > m { x } else { m })
}

/// Five-number style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: median(xs),
            max: max(xs),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} med={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// Histogram with uniform bins over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram needs lo < hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation from a slice.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance (n-1): Σ(x-5)² = 32, /7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(std_error(&[]), 0.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 2.0, -1.0, f64::NAN, 5.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 5.0);
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 2.0);
        assert!(s.to_string().contains("n=3"));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend_from(&[0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 100.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
