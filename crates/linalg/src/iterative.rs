//! Iterative solvers for sparse linear systems.
//!
//! The crossbar nodal systems are symmetric positive definite and strongly
//! diagonally dominant, so both conjugate gradient and successive
//! over-relaxation converge quickly. CG is the default; SOR is kept both as
//! a cross-check and because it tolerates mild asymmetry from boundary
//! stamping.

use crate::sparse::CsrMatrix;
use crate::{vector, LinalgError, Result};

/// Stopping criteria for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the residual ∞-norm.
    pub tolerance: f64,
    /// SOR relaxation factor ω ∈ (0, 2); ignored by CG.
    pub omega: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            tolerance: 1e-10,
            omega: 1.6,
        }
    }
}

impl SolveOptions {
    /// Options with the given tolerance, other fields defaulted.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tolerance,
            ..Self::default()
        }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual: f64,
}

/// Conjugate gradient for symmetric positive definite systems.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if shapes disagree.
/// * [`LinalgError::NotConverged`] if the tolerance is not reached within
///   `options.max_iterations`.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &SolveOptions,
) -> Result<SolveReport> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "conjugate_gradient (matrix must be square)",
            expected: n,
            actual: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "conjugate_gradient rhs",
            expected: n,
            actual: b.len(),
        });
    }
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    context: "conjugate_gradient initial guess",
                    expected: n,
                    actual: x0.len(),
                });
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    if n == 0 {
        return Ok(SolveReport {
            x,
            iterations: 0,
            residual: 0.0,
        });
    }

    // Jacobi (diagonal) preconditioning: nodal matrices have widely varying
    // diagonal magnitudes (device conductances in µS vs wire conductances
    // in S), so plain CG is badly conditioned without it.
    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 1.0 })
        .collect();

    let ax = a.matvec(&x);
    let mut r = vector::sub(b, &ax);
    let mut z = vector::hadamard(&inv_diag, &r);
    let mut p = z.clone();
    let mut rz = vector::dot(&r, &z);

    let mut best_residual = vector::norm_inf(&r);
    if best_residual <= options.tolerance {
        return Ok(SolveReport {
            x,
            iterations: 0,
            residual: best_residual,
        });
    }

    for iter in 1..=options.max_iterations {
        let ap = a.matvec(&p);
        let pap = vector::dot(&p, &ap);
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / pap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        best_residual = vector::norm_inf(&r);
        if best_residual <= options.tolerance {
            return Ok(SolveReport {
                x,
                iterations: iter,
                residual: best_residual,
            });
        }
        z = vector::hadamard(&inv_diag, &r);
        let rz_new = vector::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual: best_residual,
    })
}

/// Successive over-relaxation (Gauss–Seidel when `omega == 1`).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if shapes disagree.
/// * [`LinalgError::InvalidParameter`] if `omega ∉ (0, 2)` or a diagonal
///   entry is zero.
/// * [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &SolveOptions,
) -> Result<SolveReport> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "sor (matrix must be square)",
            expected: n,
            actual: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "sor rhs",
            expected: n,
            actual: b.len(),
        });
    }
    if !(options.omega > 0.0 && options.omega < 2.0) {
        return Err(LinalgError::InvalidParameter {
            name: "omega",
            requirement: "must lie in (0, 2)",
        });
    }
    let diag = a.diagonal();
    if diag.iter().any(|&d| d.abs() < 1e-300) {
        return Err(LinalgError::InvalidParameter {
            name: "matrix diagonal",
            requirement: "must be non-zero for SOR",
        });
    }
    let mut x = match x0 {
        Some(x0) if x0.len() == n => x0.to_vec(),
        Some(x0) => {
            return Err(LinalgError::DimensionMismatch {
                context: "sor initial guess",
                expected: n,
                actual: x0.len(),
            })
        }
        None => vec![0.0; n],
    };
    if n == 0 {
        return Ok(SolveReport {
            x,
            iterations: 0,
            residual: 0.0,
        });
    }

    let omega = options.omega;
    for iter in 1..=options.max_iterations {
        for i in 0..n {
            let mut sigma = 0.0;
            for (j, v) in a.row_iter(i) {
                if j != i {
                    sigma += v * x[j];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] = (1.0 - omega) * x[i] + omega * gs;
        }
        // Checking the residual every sweep costs another matvec; do it
        // every 4 sweeps (and on the first) to amortize.
        if iter % 4 == 0 || iter == 1 {
            let residual = a.residual_inf(&x, b);
            if residual <= options.tolerance {
                return Ok(SolveReport {
                    x,
                    iterations: iter,
                    residual,
                });
            }
        }
    }
    let residual = a.residual_inf(&x, b);
    if residual <= options.tolerance {
        let iterations = options.max_iterations;
        return Ok(SolveReport {
            x,
            iterations,
            residual,
        });
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// 1-D Poisson (tridiagonal [-1, 2, -1]) — SPD, classic test problem.
    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 64;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1).cos()).collect();
        let b = a.matvec(&x_true);
        let rep = conjugate_gradient(&a, &b, None, &SolveOptions::default()).unwrap();
        for (u, v) in rep.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
        assert!(rep.iterations <= n + 5);
    }

    #[test]
    fn sor_solves_poisson() {
        let n = 32;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let b = a.matvec(&x_true);
        let rep = sor(&a, &b, None, &SolveOptions::with_tolerance(1e-9)).unwrap();
        for (u, v) in rep.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn cg_and_sor_agree() {
        let n = 40;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let xc = conjugate_gradient(&a, &b, None, &SolveOptions::default())
            .unwrap()
            .x;
        let xs = sor(&a, &b, None, &SolveOptions::with_tolerance(1e-11))
            .unwrap()
            .x;
        for (u, v) in xc.iter().zip(&xs) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 64;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let b = a.matvec(&x_true);
        let cold = conjugate_gradient(&a, &b, None, &SolveOptions::default()).unwrap();
        let warm = conjugate_gradient(&a, &b, Some(&x_true), &SolveOptions::default()).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn cg_reports_non_convergence() {
        let n = 128;
        let a = poisson(n);
        let b = vec![1.0; n];
        let opts = SolveOptions {
            max_iterations: 2,
            tolerance: 1e-14,
            omega: 1.0,
        };
        match conjugate_gradient(&a, &b, None, &opts) {
            Err(LinalgError::NotConverged { iterations, .. }) => assert_eq!(iterations, 2),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn sor_rejects_bad_omega() {
        let a = poisson(4);
        let b = vec![1.0; 4];
        let opts = SolveOptions {
            omega: 2.5,
            ..Default::default()
        };
        assert!(matches!(
            sor(&a, &b, None, &opts),
            Err(LinalgError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn sor_rejects_zero_diagonal() {
        let mut t = TripletBuilder::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1.0);
        let a = t.build();
        assert!(matches!(
            sor(&a, &[1.0, 1.0], None, &SolveOptions::default()),
            Err(LinalgError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = poisson(4);
        assert!(conjugate_gradient(&a, &[1.0; 3], None, &SolveOptions::default()).is_err());
        assert!(sor(&a, &[1.0; 5], None, &SolveOptions::default()).is_err());
        assert!(
            conjugate_gradient(&a, &[1.0; 4], Some(&[0.0; 3]), &SolveOptions::default()).is_err()
        );
    }

    #[test]
    fn empty_system() {
        let a = TripletBuilder::new(0, 0).build();
        let rep = conjugate_gradient(&a, &[], None, &SolveOptions::default()).unwrap();
        assert!(rep.x.is_empty());
        let rep = sor(&a, &[], None, &SolveOptions::default()).unwrap();
        assert!(rep.x.is_empty());
    }

    #[test]
    fn badly_scaled_diagonal_still_converges() {
        // Mimics the nodal matrix: wire conductance ~0.4 S, device ~1e-5 S.
        let n = 30;
        let mut t = TripletBuilder::new(n, n);
        for i in 0..n {
            let big = 0.4;
            let small = 1e-5 * (1.0 + i as f64);
            t.add(i, i, 2.0 * big + small);
            if i > 0 {
                t.add(i, i - 1, -big);
            }
            if i + 1 < n {
                t.add(i, i + 1, -big);
            }
        }
        let a = t.build();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
        let b = a.matvec(&x_true);
        let rep = conjugate_gradient(&a, &b, None, &SolveOptions::with_tolerance(1e-12)).unwrap();
        for (u, v) in rep.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}
