//! Linear algebra, random-number and statistics substrate for the Vortex
//! memristor-crossbar reproduction.
//!
//! The crate is self-contained (no external math dependencies) and provides
//! exactly the numerical tools the rest of the workspace needs:
//!
//! * [`Matrix`] / [`vector`] — dense row-major matrices and slice-based
//!   vector kernels (dot products, norms, AXPY, …).
//! * [`lu`] — LU factorization with partial pivoting for small dense
//!   systems (used to validate the iterative circuit solvers).
//! * [`sparse`] — compressed-sparse-row matrices assembled from triplets
//!   (used for the crossbar IR-drop nodal equations).
//! * [`iterative`] — conjugate-gradient and successive-over-relaxation
//!   solvers for the sparse, diagonally dominant nodal systems.
//! * [`rng`] — a deterministic, seedable xoshiro256++ generator, so every
//!   Monte-Carlo experiment in the workspace is reproducible.
//! * [`distributions`] — normal / lognormal / Bernoulli sampling, the
//!   variation models of the paper (Lee et al., VLSIT'12 lognormal).
//! * [`stats`] — summary statistics used by the experiment harness.
//! * [`chi2`] — the Chi-square inverse CDF used to compute the confidence
//!   radius `ρ` of the VAT penalty bound (Eq. (7)–(9) of the paper).
//!
//! # Example
//!
//! ```
//! use vortex_linalg::{Matrix, rng::Xoshiro256PlusPlus, distributions::Normal};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! let normal = Normal::new(0.0, 1.0).expect("valid parameters");
//! let a = Matrix::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 0.5 });
//! let x = vec![1.0, 2.0, 3.0];
//! let y = a.matvec(&x);
//! assert_eq!(y.len(), 3);
//! let _sample = normal.sample(&mut rng);
//! ```

#![warn(missing_docs)]

pub mod chi2;
pub mod distributions;
pub mod iterative;
pub mod lu;
pub mod matrix;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Xoshiro256PlusPlus;
pub use sparse::CsrMatrix;

/// Error type for numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix/vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A factorization or solve hit a (numerically) singular pivot.
    Singular {
        /// Index of the offending pivot.
        pivot: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated requirement.
        requirement: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            LinalgError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            context: "matvec",
            expected: 4,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains("matvec"));
        assert!(s.contains('4'));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_converged_display() {
        let e = LinalgError::NotConverged {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn singular_display() {
        let e = LinalgError::Singular { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));
    }
}
