//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use vortest_shims::*;
use vortex_linalg::chi2;
use vortex_linalg::iterative::{conjugate_gradient, SolveOptions};

mod vortest_shims {
    pub use vortex_linalg::lu;
    pub use vortex_linalg::sparse::TripletBuilder;
    pub use vortex_linalg::stats;
    pub use vortex_linalg::vector;
    pub use vortex_linalg::Matrix;
}

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0..100.0f64).prop_filter("finite", |v| v.is_finite())
}

fn vec_of(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(small_f64(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_commutative(x in vec_of(8), y in vec_of(8)) {
        let a = vector::dot(&x, &y);
        let b = vector::dot(&y, &x);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn cauchy_schwarz(x in vec_of(12), y in vec_of(12)) {
        let lhs = vector::dot(&x, &y).abs();
        let rhs = vector::norm2(&x) * vector::norm2(&y);
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn triangle_inequality(x in vec_of(10), y in vec_of(10)) {
        let sum = vector::add(&x, &y);
        prop_assert!(
            vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9
        );
    }

    #[test]
    fn matvec_is_linear(data in vec_of(12), x in vec_of(4), y in vec_of(4), a in -3.0..3.0f64) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        let ax_plus_y: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + v).collect();
        let lhs = m.matvec(&ax_plus_y);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..3 {
            let rhs = a * mx[i] + my[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn transpose_involution(data in vec_of(20)) {
        let m = Matrix::from_vec(4, 5, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn permute_rows_preserves_multiset(data in vec_of(15), seed in 0u64..1000) {
        let m = Matrix::from_vec(5, 3, data).unwrap();
        let mut rng = vortex_linalg::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..5).collect();
        rng.shuffle(&mut perm);
        let p = m.permute_rows(&perm);
        let mut a: Vec<u64> = m.as_slice().iter().map(|v| v.to_bits()).collect();
        let mut b: Vec<u64> = p.as_slice().iter().map(|v| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lu_solve_roundtrip(diag in proptest::collection::vec(1.0..50.0f64, 6),
                          off in proptest::collection::vec(-0.4..0.4f64, 36),
                          x_true in vec_of(6)) {
        // Diagonally dominant ⇒ nonsingular.
        let m = Matrix::from_fn(6, 6, |i, j| {
            if i == j { diag[i] } else { off[i * 6 + j] }
        });
        let b = m.matvec(&x_true);
        let x = lu::solve(&m, &b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn cg_agrees_with_lu_on_spd(vals in proptest::collection::vec(0.5..5.0f64, 10),
                                rhs in vec_of(10)) {
        // SPD tridiagonal system.
        let mut t = TripletBuilder::new(10, 10);
        for (i, &v) in vals.iter().enumerate() {
            t.add(i, i, 2.0 + v);
            if i > 0 {
                t.add(i, i - 1, -1.0);
                t.add(i - 1, i, -1.0);
            }
        }
        let a = t.build();
        let cg = conjugate_gradient(&a, &rhs, None, &SolveOptions::with_tolerance(1e-11)).unwrap();
        let direct = lu::solve(&a.to_dense(), &rhs).unwrap();
        for (u, v) in cg.x.iter().zip(&direct) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn sparse_matvec_matches_dense(entries in proptest::collection::vec(
        (0usize..6, 0usize..6, -5.0..5.0f64), 0..24), x in vec_of(6)) {
        let mut t = TripletBuilder::new(6, 6);
        for &(i, j, v) in &entries {
            t.add(i, j, v);
        }
        let sp = t.build();
        let ys = sp.matvec(&x);
        let yd = sp.to_dense().matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in proptest::collection::vec(-1e3..1e3f64, 1..40),
                                          q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&xs, lo);
        let b = stats::quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= stats::min(&xs) - 1e-12);
        prop_assert!(b <= stats::max(&xs) + 1e-12);
    }

    #[test]
    fn chi2_quantile_inverts_cdf(p in 0.01..0.99f64, dof in 1usize..300) {
        let x = chi2::chi2_quantile(p, dof).unwrap();
        prop_assert!((chi2::chi2_cdf(x, dof) - p).abs() < 1e-6);
    }

    #[test]
    fn rng_uniform_in_range(seed in proptest::num::u64::ANY, lo in -10.0..0.0f64, width in 0.001..10.0f64) {
        let mut rng = vortex_linalg::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = rng.range_f64(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    #[test]
    fn histogram_total_counts_everything(xs in proptest::collection::vec(-2.0..2.0f64, 0..100)) {
        let mut h = stats::Histogram::new(-1.0, 1.0, 7);
        h.extend_from(&xs);
        prop_assert_eq!(h.total(), xs.len());
    }

    #[test]
    fn split_children_never_collide_with_parent_stream(seed in proptest::num::u64::ANY,
                                                       n_children in 1usize..8) {
        // The determinism contract of the parallel executor rests on split
        // streams being disjoint: a child that replayed the parent (or a
        // sibling) would correlate Monte-Carlo trials. Drain a window of
        // every stream; all draws must be distinct (a true 64-bit
        // collision has probability ~2⁻⁵⁰ here).
        let mut parent = vortex_linalg::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut children: Vec<_> = (0..n_children).map(|_| parent.split()).collect();
        let mut draws = Vec::with_capacity(32 * (n_children + 1));
        for _ in 0..32 {
            draws.push(parent.next_u64());
        }
        for child in &mut children {
            for _ in 0..32 {
                draws.push(child.next_u64());
            }
        }
        let total = draws.len();
        draws.sort_unstable();
        draws.dedup();
        prop_assert_eq!(draws.len(), total);
    }
}
