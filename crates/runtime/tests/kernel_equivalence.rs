//! The f32 fast-path contract, property-tested: scores stay inside the
//! analytic error radius of the f64 reference, and certified labels are
//! *exactly* the reference labels — on random matrices and on compiled
//! models shaped like the bench datasets, across batch shapes and worker
//! counts.

use proptest::prelude::*;
use vortex_device::DeviceParams;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::{vector, Matrix};
use vortex_nn::executor::Parallelism;
use vortex_runtime::kernels::{gemv_ref, FastGemv};
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};
use vortex_xbar::sensing::{Adc, Dac};

/// Compiles a small model on fabricated hardware; `adc` switches the
/// quantized back end (which must disable the fast path) on and off.
fn compiled(rows: usize, fidelity: Fidelity, adc: bool, seed: u64) -> CompiledModel {
    let cols = 4;
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 4.0,
        ..CrossbarConfig::ideal(rows, cols, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(rows, cols, |i, j| {
        ((i * cols + j) as f64 * 0.37).sin() * 0.7
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..rows).collect();
    let mut options = ReadOptions::new(fidelity);
    if adc {
        options.adc = Some(Adc::new(8, 1e-3).unwrap());
    }
    options.dac = Some(Dac::new(6, 1.0).unwrap());
    let reference = vec![0.4; rows];
    CompiledModel::compile(&pair.freeze(), &assignment, &options, Some(&reference)).unwrap()
}

fn inputs_for(rows: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|k| {
            (0..rows)
                .map(|i| (((i * 7 + k * 13) % 9) as f64) / 8.0)
                .collect()
        })
        .collect()
}

/// The f64 reference of the combined differential read:
/// `(pos - neg)/scale` per column, in `gemv_ref`'s operation order.
fn reference_scores(pos: &Matrix, neg: &Matrix, scale: f64, x: &[f64]) -> Vec<f64> {
    let cols = pos.shape().1;
    let mut ip = vec![0.0; cols];
    let mut in_ = vec![0.0; cols];
    gemv_ref(pos, x, &mut ip);
    gemv_ref(neg, x, &mut in_);
    ip.iter().zip(&in_).map(|(p, n)| (p - n) / scale).collect()
}

/// A conductance-shaped random pair: positive entries around `scale`.
fn random_pair(rows: usize, cols: usize, seed: u64, scale: f64) -> (Matrix, Matrix) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut draw = |_: usize, _: usize| scale * (0.05 + 1.9 * rng.next_f64());
    let pos = Matrix::from_fn(rows, cols, &mut draw);
    let neg = Matrix::from_fn(rows, cols, &mut draw);
    (pos, neg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The analytic radius really bounds the f32/f64 disagreement: for
    /// random conductance pairs and random inputs, every f32 score sits
    /// within `‖x‖₁ · radius(j)` of the f64 reference score.
    #[test]
    fn f32_scores_stay_inside_the_analytic_radius(rows in 1usize..96,
                                                  cols in 1usize..12,
                                                  seed in proptest::num::u64::ANY) {
        let scale = 2.5e-4;
        let (pos, neg) = random_pair(rows, cols, seed, scale);
        let fast = FastGemv::from_effective(&pos, &neg, scale);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x9e37_79b9);
        let x: Vec<f64> = (0..rows).map(|_| 2.0 * rng.next_f64() - 0.5).collect();
        let norm1: f64 = x.iter().map(|v| v.abs()).sum();
        let reference = reference_scores(&pos, &neg, scale, &x);

        let mut x32 = vec![0f32; rows];
        let mut s32 = vec![0f32; cols];
        for (dst, &v) in x32.iter_mut().zip(&x) {
            *dst = v as f32;
        }
        fast.scores_into(&x32, &mut s32);
        for j in 0..cols {
            let err = (f64::from(s32[j]) - reference[j]).abs();
            let bound = norm1 * fast.radius(j);
            prop_assert!(
                err <= bound,
                "col {j}: |{} - {}| = {err:e} exceeds radius {bound:e}",
                s32[j], reference[j]
            );
        }
    }

    /// Certification is sound on arbitrary random instances: whenever the
    /// fast path answers at all, its label is the reference argmax.
    #[test]
    fn certified_labels_equal_the_reference_argmax(rows in 1usize..96,
                                                   cols in 2usize..12,
                                                   seed in proptest::num::u64::ANY) {
        let scale = 2.5e-4;
        let (pos, neg) = random_pair(rows, cols, seed, scale);
        let fast = FastGemv::from_effective(&pos, &neg, scale);
        let mut x32 = vec![0f32; rows];
        let mut s32 = vec![0f32; cols];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(!seed);
        for _ in 0..8 {
            let x: Vec<f64> = (0..rows).map(|_| rng.next_f64()).collect();
            let reference = reference_scores(&pos, &neg, scale, &x);
            let want = vector::argmax(&reference).unwrap();
            if let Some(got) = fast.certified_label(&x, &mut x32, &mut s32) {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// End to end on a compiled model: the fast-path `infer` and the
    /// forced-reference `infer` agree label for label, and the batched
    /// read agrees at every batch shape and worker count.
    #[test]
    fn compiled_model_labels_are_kernel_invariant(rows in 2usize..24,
                                                  seed in proptest::num::u64::ANY) {
        let fast = compiled(rows, Fidelity::Calibrated, false, seed);
        prop_assert!(fast.fast_path_enabled(), "ADC-free calibrated model must take the fast path");
        let reference = fast.clone().with_reference_kernel();
        prop_assert!(!reference.fast_path_enabled());

        let inputs = inputs_for(rows, 37);
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        for x in &inputs {
            prop_assert_eq!(fast.infer(x).unwrap(), reference.infer(x).unwrap());
            // Scores are the reference kernel's on both: bit-identical.
            let a = fast.scores(x).unwrap();
            let b = reference.scores(x).unwrap();
            for (u, v) in a.iter().zip(&b) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        let golden = reference.infer_batch(&refs, Parallelism::Serial).unwrap();
        for workers in [1, 2, 8] {
            let got = fast.infer_batch(&refs, Parallelism::Fixed(workers)).unwrap();
            prop_assert_eq!(&golden, &got);
        }
        // Batch shape must not matter either: per-sample == one batch.
        for (x, &want) in inputs.iter().zip(&golden) {
            prop_assert_eq!(fast.infer(x).unwrap(), want);
        }
    }
}

#[test]
fn fast_path_gating_follows_fidelity_and_adc() {
    // ADC-free ideal/calibrated reads may use the fast path; an ADC
    // quantizes *after* the analog product, so its presence forces the
    // reference; Exact re-solves nodal physics per sample and never
    // compiles a static matrix the fast path could certify against.
    assert!(compiled(9, Fidelity::Ideal, false, 7).fast_path_enabled());
    assert!(compiled(9, Fidelity::Calibrated, false, 7).fast_path_enabled());
    assert!(!compiled(9, Fidelity::Ideal, true, 7).fast_path_enabled());
    assert!(!compiled(9, Fidelity::Calibrated, true, 7).fast_path_enabled());
    assert!(!compiled(9, Fidelity::Exact, false, 7).fast_path_enabled());
    assert!(!compiled(9, Fidelity::Calibrated, false, 7)
        .with_reference_kernel()
        .fast_path_enabled());
}

#[test]
fn bench_shaped_dataset_labels_agree_exactly() {
    // The runtime bench compiles a 196-row digit classifier with
    // calibration and no ADC — the exact configuration the fast path
    // serves. Labels must match the reference on every sample.
    let rows = 196;
    let fast = compiled(rows, Fidelity::Calibrated, false, 1234);
    assert!(fast.fast_path_enabled());
    let reference = fast.clone().with_reference_kernel();
    let inputs = inputs_for(rows, 211);
    let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
    let a = fast.infer_batch(&refs, Parallelism::Fixed(4)).unwrap();
    let b = reference.infer_batch(&refs, Parallelism::Serial).unwrap();
    assert_eq!(a, b, "bench-shaped labels diverged between kernels");
}

#[test]
fn artifact_roundtrip_reenables_the_fast_path() {
    // The derived matrix is rebuilt on load, so a saved-then-loaded model
    // keeps the fast path — and keeps the same labels.
    let model = compiled(11, Fidelity::Calibrated, false, 99);
    let revived = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
    assert!(revived.fast_path_enabled());
    for x in inputs_for(11, 17) {
        assert_eq!(model.infer(&x).unwrap(), revived.infer(&x).unwrap());
    }
}
