//! Checkpoint codec robustness: property-based round-trips of the `TRNC`
//! section, typed errors on corrupt fields, and checksum coverage of
//! arbitrary single-bit corruption.

use proptest::prelude::*;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_runtime::artifact::{crc32, ArtifactError, MAGIC};
use vortex_runtime::{RuntimeError, TrainingCheckpoint};

/// Byte offset of the TRNC payload in a checkpoint file: magic (8) +
/// version (4) + section count (4) + tag (4) + section length (8).
const PAYLOAD_AT: usize = 28;

fn checkpoint(seed: u64, rows: usize, cols: usize, epoch: u64) -> TrainingCheckpoint {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let weights = Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-1.0, 1.0));
    TrainingCheckpoint {
        weights,
        epoch,
        samples_seen: epoch.wrapping_mul(96),
        seed,
        step_scale: 1e-4 + rng.next_f64(),
        last_mse: rng.next_f64(),
        rng_state: rng.state(),
    }
}

fn checkpoint_err(r: vortex_runtime::Result<TrainingCheckpoint>) -> ArtifactError {
    match r {
        Err(RuntimeError::Artifact(e)) => e,
        other => panic!("expected an artifact error, got {other:?}"),
    }
}

fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

#[test]
fn corrupt_section_length_is_typed() {
    // Announce a section payload longer than the file: the cursor must
    // fail typed, never read out of bounds.
    let mut bytes = checkpoint(3, 4, 3, 9).to_bytes();
    bytes[MAGIC.len() + 12..MAGIC.len() + 20].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(
        checkpoint_err(TrainingCheckpoint::from_bytes(&bytes)),
        ArtifactError::Truncated { .. } | ArtifactError::Malformed { .. }
    ));
}

#[test]
fn corrupt_step_scale_is_malformed() {
    // A non-positive optimizer scale cannot resume a normalized-LMS job;
    // the decoder rejects it before any training code sees it.
    let mut bytes = checkpoint(4, 4, 3, 2).to_bytes();
    let scale_at = PAYLOAD_AT + 24;
    bytes[scale_at..scale_at + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(
        checkpoint_err(TrainingCheckpoint::from_bytes(&bytes)),
        ArtifactError::Malformed {
            context: "TRNC step scale"
        }
    ));
}

#[test]
fn epoch_field_survives_extreme_values() {
    // The epoch is an opaque counter: the codec must round-trip the full
    // u64 domain, not just small values.
    for epoch in [0, 1, u64::MAX / 2, u64::MAX] {
        let ck = checkpoint(5, 2, 2, epoch);
        let revived = TrainingCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(revived.epoch, epoch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trnc_round_trip_is_bit_exact(rows in 1usize..12,
                                    cols in 1usize..6,
                                    epoch in proptest::num::u64::ANY,
                                    seed in proptest::num::u64::ANY) {
        let ck = checkpoint(seed, rows, cols, epoch);
        let bytes = ck.to_bytes();
        let revived = TrainingCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&revived, &ck);
        // Re-encoding the revived checkpoint reproduces the byte stream
        // exactly: the codec is a bijection on its image.
        prop_assert_eq!(revived.to_bytes(), bytes);
    }

    #[test]
    fn any_single_bit_flip_fails_loudly(seed in proptest::num::u64::ANY,
                                        position in proptest::num::u64::ANY) {
        let bytes = checkpoint(seed, 3, 2, 5).to_bytes();
        let bit = (position % (bytes.len() as u64 * 8)) as usize;
        let mut corrupt = bytes.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        // CRC-32 detects every single-bit error; flips in the magic,
        // version or trailer fail through their own typed paths.
        let err = checkpoint_err(TrainingCheckpoint::from_bytes(&corrupt));
        prop_assert!(matches!(
            err,
            ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::BadMagic
                | ArtifactError::UnsupportedVersion { .. }
                | ArtifactError::Truncated { .. }
        ), "bit {} gave {:?}", bit, err);
    }
}
