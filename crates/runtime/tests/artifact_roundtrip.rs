//! Artifact codec integration tests: round-trips, corruption handling,
//! and cross-worker determinism of the serving path.

use proptest::prelude::*;
use vortex_device::DeviceParams;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::executor::Parallelism;
use vortex_runtime::artifact::{crc32, ArtifactError, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions, RuntimeError};
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};
use vortex_xbar::sensing::{Adc, Dac};

fn compiled(rows: usize, cols: usize, r_wire: f64, fidelity: Fidelity, seed: u64) -> CompiledModel {
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire,
        ..CrossbarConfig::ideal(rows, cols, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(rows, cols, |i, j| {
        ((i * cols + j) as f64 * 0.37).sin() * 0.7
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..rows).collect();
    let mut options = ReadOptions::new(fidelity);
    options.adc = Some(Adc::new(8, 1e-3).unwrap());
    options.dac = Some(Dac::new(6, 1.0).unwrap());
    let reference = vec![0.4; rows];
    CompiledModel::compile(&pair.freeze(), &assignment, &options, Some(&reference)).unwrap()
}

fn artifact_err(r: vortex_runtime::Result<CompiledModel>) -> ArtifactError {
    match r {
        Err(RuntimeError::Artifact(e)) => e,
        other => panic!("expected an artifact error, got {other:?}"),
    }
}

fn probe_inputs(rows: usize) -> Vec<Vec<f64>> {
    (0..7)
        .map(|k| {
            (0..rows)
                .map(|i| (((i + 3 * k) % 5) as f64) / 4.0)
                .collect()
        })
        .collect()
}

#[test]
fn saved_then_loaded_model_predicts_identically() {
    let model = compiled(9, 4, 6.0, Fidelity::Calibrated, 77);
    let path = std::env::temp_dir().join(format!("vxrt-roundtrip-{}.bin", std::process::id()));
    model.save(&path).unwrap();
    let loaded = CompiledModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for x in probe_inputs(9) {
        let a = model.scores(&x).unwrap();
        let b = loaded.scores(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.to_bits(), v.to_bits(), "saved/loaded scores diverge");
        }
        assert_eq!(model.infer(&x).unwrap(), loaded.infer(&x).unwrap());
    }
}

#[test]
fn torn_write_leaves_previous_artifact_intact() {
    use vortex_runtime::artifact::atomic_write;
    let a = compiled(6, 3, 0.0, Fidelity::Ideal, 5);
    let b = compiled(6, 3, 0.0, Fidelity::Ideal, 6);
    let path = std::env::temp_dir().join(format!("vxrt-torn-{}.bin", std::process::id()));
    a.save(&path).unwrap();

    // A crash mid-write of the replacement leaves only a torn temp file
    // beside the target — exactly the on-disk state atomic_write's
    // temp → fsync → rename protocol produces if the process dies before
    // the rename.
    let tmp = path.with_extension("tmp-vxrt");
    let replacement = b.to_bytes();
    std::fs::write(&tmp, &replacement[..replacement.len() / 2]).unwrap();

    // The target never saw a byte of the torn write: it still loads as
    // the previous model, bit for bit.
    let loaded = CompiledModel::load(&path).unwrap();
    for x in probe_inputs(6) {
        assert_eq!(a.infer(&x).unwrap(), loaded.infer(&x).unwrap());
    }

    // A subsequent healthy save simply overwrites the torn temp and
    // promotes the replacement atomically.
    atomic_write(&path, &replacement).unwrap();
    let loaded = CompiledModel::load(&path).unwrap();
    for x in probe_inputs(6) {
        assert_eq!(b.infer(&x).unwrap(), loaded.infer(&x).unwrap());
    }
    assert!(!tmp.exists(), "temp file must not outlive a healthy save");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_missing_file_is_a_typed_io_error() {
    let path = std::env::temp_dir().join("vxrt-does-not-exist.bin");
    match artifact_err(CompiledModel::load(&path)) {
        ArtifactError::Io { kind, .. } => {
            assert_eq!(kind, std::io::ErrorKind::NotFound);
        }
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn truncated_bytes_yield_truncated_or_checksum_errors() {
    let bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    // Every proper prefix must fail loudly — never decode to a model.
    for cut in 0..bytes.len() {
        let err = artifact_err(CompiledModel::from_bytes(&bytes[..cut]));
        assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. }
                    | ArtifactError::ChecksumMismatch { .. }
                    | ArtifactError::BadMagic
            ),
            "prefix of {cut} bytes gave {err:?}"
        );
    }
}

#[test]
fn flipped_byte_yields_checksum_mismatch() {
    let bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    // Flip one byte in the section region (past magic + version, before
    // the trailing CRC); the CRC check must catch it before decoding.
    let mut corrupt = bytes.clone();
    let idx = 20;
    corrupt[idx] ^= 0x40;
    match artifact_err(CompiledModel::from_bytes(&corrupt)) {
        ArtifactError::ChecksumMismatch { stored, computed } => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_version_yields_unsupported_version() {
    let mut bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    // The version field sits right after the magic.
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
    match artifact_err(CompiledModel::from_bytes(&bytes)) {
        ArtifactError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 99);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn canary_survives_the_byte_roundtrip_bit_exactly() {
    let model = compiled(9, 4, 6.0, Fidelity::Calibrated, 77)
        .with_canary_inputs(probe_inputs(9))
        .unwrap();
    assert_eq!(model.canary_accuracy().unwrap(), 1.0);
    let revived = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
    let (a, b) = (model.canary().unwrap(), revived.canary().unwrap());
    assert_eq!(a.golden(), b.golden());
    for (x, y) in a.inputs().iter().zip(b.inputs()) {
        for (u, v) in x.iter().zip(y) {
            assert_eq!(u.to_bits(), v.to_bits(), "canary inputs diverged");
        }
    }
    assert_eq!(revived.canary_accuracy().unwrap(), 1.0);
}

#[test]
fn version_one_artifacts_without_canary_still_load() {
    // A canary-free model's sections are exactly the v1 layout, so
    // rewriting the version field (and the CRC over the patched bytes)
    // synthesizes a faithful v1 artifact.
    let model = compiled(6, 3, 0.0, Fidelity::Ideal, 5);
    let mut bytes = model.to_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
    let loaded = CompiledModel::from_bytes(&bytes).unwrap();
    assert!(loaded.canary().is_none());
    for x in probe_inputs(6) {
        assert_eq!(model.infer(&x).unwrap(), loaded.infer(&x).unwrap());
    }
}

#[test]
fn malformed_canary_section_is_a_typed_error() {
    let model = compiled(6, 3, 0.0, Fidelity::Ideal, 5)
        .with_canary_inputs(probe_inputs(6))
        .unwrap();
    let bytes = model.to_bytes();
    // The CNRY section sits last; its payload starts with the probe
    // count. Inflate it so the golden bytes run out, and re-seal the CRC
    // so only the structural error can fire.
    let tag_at = bytes
        .windows(4)
        .rposition(|w| w == b"CNRY")
        .expect("canary section present");
    let mut corrupt = bytes.clone();
    corrupt[tag_at + 12..tag_at + 20].copy_from_slice(&u64::MAX.to_le_bytes());
    let body = corrupt.len() - 4;
    let crc = crc32(&corrupt[..body]).to_le_bytes();
    corrupt[body..].copy_from_slice(&crc);
    match artifact_err(CompiledModel::from_bytes(&corrupt)) {
        ArtifactError::Truncated { .. } | ArtifactError::Malformed { .. } => {}
        other => panic!("expected Truncated/Malformed, got {other:?}"),
    }
}

#[test]
fn every_canary_artifact_prefix_fails_loudly() {
    let bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5)
        .with_canary_inputs(probe_inputs(6))
        .unwrap()
        .to_bytes();
    for cut in (0..bytes.len()).step_by(7) {
        let err = artifact_err(CompiledModel::from_bytes(&bytes[..cut]));
        assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. }
                    | ArtifactError::ChecksumMismatch { .. }
                    | ArtifactError::BadMagic
            ),
            "prefix of {cut} bytes gave {err:?}"
        );
    }
}

/// Byte offset of a section's payload: tag (4) + length (8).
const SECTION_HEADER: usize = 12;

fn enct_tag_at(bytes: &[u8]) -> usize {
    bytes
        .windows(4)
        .rposition(|w| w == b"ENCT")
        .expect("encoding section present")
}

fn reseal_crc(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

#[test]
fn version_two_artifacts_without_enct_load_as_differential() {
    // v2 writers never emitted ENCT: excise the section, stamp version 2
    // and re-seal the CRC to synthesize a faithful v2 artifact. It must
    // load with the default continuous differential-pair table.
    let model = compiled(6, 3, 0.0, Fidelity::Ideal, 5);
    let mut bytes = model.to_bytes();
    let tag_at = enct_tag_at(&bytes);
    let len = u64::from_le_bytes(bytes[tag_at + 4..tag_at + 12].try_into().unwrap()) as usize;
    bytes.drain(tag_at..tag_at + SECTION_HEADER + len);
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
    // One fewer section than the writer announced.
    let count_at = MAGIC.len() + 4;
    let count = u32::from_le_bytes(bytes[count_at..count_at + 4].try_into().unwrap());
    bytes[count_at..count_at + 4].copy_from_slice(&(count - 1).to_le_bytes());
    reseal_crc(&mut bytes);
    let loaded = CompiledModel::from_bytes(&bytes).unwrap();
    assert_eq!(
        loaded.encoding().scheme(),
        vortex_xbar::encoding::EncodingScheme::Differential
    );
    assert_eq!(loaded.encoding().rows(), 6);
    assert!(loaded.encoding().levels().iter().all(|&l| l == 0));
    for x in probe_inputs(6) {
        assert_eq!(model.infer(&x).unwrap(), loaded.infer(&x).unwrap());
    }
}

#[test]
fn version_three_roundtrips_per_row_encoding_tables() {
    use vortex_xbar::encoding::{EncodingScheme, EncodingTable};
    let device = DeviceParams::default();
    let config = CrossbarConfig::ideal(6, 3, device);
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f64 * 0.37).sin() * 0.7);
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..6).collect();
    let options = ReadOptions::new(Fidelity::Ideal);
    // A mixed table: continuous rows (0) interleaved with quantized ones.
    let table = EncodingTable::new(EncodingScheme::AdaptiveRow, vec![0, 4, 16, 64, 4, 0]).unwrap();
    let model =
        CompiledModel::compile_encoded(&pair.freeze(), &assignment, &options, None, table.clone())
            .unwrap();
    assert_eq!(model.encoding(), &table);
    let revived = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
    assert_eq!(revived.encoding(), &table);
    let reloaded = CompiledModel::from_bytes(&revived.to_bytes()).unwrap();
    assert_eq!(reloaded.encoding(), &table);
}

#[test]
fn corrupt_enct_scheme_is_a_typed_error() {
    let mut bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    let tag_at = enct_tag_at(&bytes);
    // The payload's first byte is the scheme code; 99 maps to nothing.
    bytes[tag_at + SECTION_HEADER] = 99;
    reseal_crc(&mut bytes);
    match artifact_err(CompiledModel::from_bytes(&bytes)) {
        ArtifactError::Malformed { .. } => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn corrupt_enct_row_count_is_a_typed_error() {
    let mut bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    let tag_at = enct_tag_at(&bytes);
    // Announce far more rows than the payload carries.
    bytes[tag_at + SECTION_HEADER + 1..tag_at + SECTION_HEADER + 9]
        .copy_from_slice(&u64::MAX.to_le_bytes());
    reseal_crc(&mut bytes);
    match artifact_err(CompiledModel::from_bytes(&bytes)) {
        ArtifactError::Malformed { .. } | ArtifactError::Truncated { .. } => {}
        other => panic!("expected Malformed/Truncated, got {other:?}"),
    }
}

#[test]
fn wrong_magic_yields_bad_magic() {
    let mut bytes = compiled(6, 3, 0.0, Fidelity::Ideal, 5).to_bytes();
    bytes[0] = b'X';
    assert_eq!(
        artifact_err(CompiledModel::from_bytes(&bytes)),
        ArtifactError::BadMagic
    );
}

#[test]
fn infer_batch_is_bit_exact_across_worker_counts() {
    let model = compiled(11, 4, 4.0, Fidelity::Calibrated, 31);
    let inputs: Vec<Vec<f64>> = (0..103)
        .map(|k| {
            (0..11)
                .map(|i| (((i * 7 + k * 13) % 9) as f64) / 8.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
    let serial = model.infer_batch(&refs, Parallelism::Serial).unwrap();
    for workers in [1, 2, 8] {
        let parallel = model
            .infer_batch(&refs, Parallelism::Fixed(workers))
            .unwrap();
        assert_eq!(serial, parallel, "{workers} workers diverged from serial");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn byte_roundtrip_preserves_inference_bits(rows in 2usize..10,
                                               cols in 2usize..5,
                                               seed in proptest::num::u64::ANY) {
        let fidelity = if seed % 2 == 0 { Fidelity::Exact } else { Fidelity::Calibrated };
        let model = compiled(rows, cols, 3.0, fidelity, seed);
        let revived = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
        prop_assert_eq!(revived.fidelity(), model.fidelity());
        prop_assert_eq!(revived.rows(), model.rows());
        prop_assert_eq!(revived.classes(), model.classes());
        for x in probe_inputs(rows) {
            let a = model.scores(&x).unwrap();
            let b = revived.scores(&x).unwrap();
            for (u, v) in a.iter().zip(&b) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }
}
