//! Training-job checkpoints: the `TRNC` section of the artifact format.
//!
//! A close-loop training job (see `vortex-train`) periodically freezes its
//! full resumable state — learned weights, optimizer scale, epoch counter
//! and the exact RNG stream position — so that a crashed job restarted
//! from the last good checkpoint replays the remaining epochs
//! *bit-identically* to a run that was never interrupted.
//!
//! Checkpoints reuse the artifact container of [`crate::artifact`]
//! verbatim (magic, format version, length-prefixed tagged sections,
//! trailing CRC-32), carrying a single `TRNC` section:
//!
//! ```text
//! TRNC   epoch u64 · samples seen u64 · job seed u64 ·
//!        step scale f64 · last mse f64 · rng state u64 × 4 ·
//!        weights (rows u64 · cols u64 · values f64 × rows·cols)
//! ```
//!
//! The section is new in format version 4; model artifacts never carry it
//! (and pre-v4 readers would skip the unknown tag by design). Decoding
//! verifies magic, version range and checksum before trusting any field,
//! and structurally impossible contents — an all-zero RNG state, a weight
//! count that disagrees with the payload length — fail with typed
//! [`ArtifactError::Malformed`] errors rather than a panic or a silently
//! wrong resume. Saves go through [`artifact::atomic_write`], so a crash
//! mid-checkpoint leaves the previous checkpoint intact.

use std::io::Read as _;
use std::path::Path;

use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::artifact::{
    self, atomic_write, crc32, ArtifactError, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION, TAG_TRNC,
};
use crate::{Result, RuntimeError};

/// The complete resumable state of a training job at a mini-epoch
/// boundary.
///
/// Restoring a checkpoint and replaying the remaining epochs produces
/// weights bit-identical to an uninterrupted run: the weights, the
/// normalized-LMS step scale and the generator state are all captured
/// exactly (floats round-trip via [`f64::to_le_bytes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// Learned weight matrix (features × classes) at the boundary.
    pub weights: Matrix,
    /// Completed mini-epochs.
    pub epoch: u64,
    /// Total training samples consumed so far.
    pub samples_seen: u64,
    /// Seed of the job this checkpoint belongs to; a supervisor refuses
    /// to resume a job from a checkpoint carrying a different seed.
    pub seed: u64,
    /// Normalized-LMS step scale (the optimizer state of the delta rule).
    pub step_scale: f64,
    /// Mean squared sensed error of the last completed mini-epoch.
    pub last_mse: f64,
    /// xoshiro256++ state at the boundary, for bit-exact stream resume.
    pub rng_state: [u64; 4],
}

impl TrainingCheckpoint {
    /// Rebuilds the training RNG positioned exactly where the checkpoint
    /// captured it.
    ///
    /// Returns `None` for an all-zero state, which no live generator can
    /// occupy (decoding already rejects it, so this only fires on a
    /// hand-constructed checkpoint).
    pub fn rng(&self) -> Option<Xoshiro256PlusPlus> {
        Xoshiro256PlusPlus::from_state(self.rng_state)
    }

    /// Serializes the checkpoint into the versioned artifact container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload =
            Vec::with_capacity(88 + 8 * self.weights.rows() * self.weights.cols() + 16);
        payload.extend_from_slice(&self.epoch.to_le_bytes());
        payload.extend_from_slice(&self.samples_seen.to_le_bytes());
        payload.extend_from_slice(&self.seed.to_le_bytes());
        payload.extend_from_slice(&self.step_scale.to_le_bytes());
        payload.extend_from_slice(&self.last_mse.to_le_bytes());
        for &s in &self.rng_state {
            payload.extend_from_slice(&s.to_le_bytes());
        }
        artifact::put_matrix(&mut payload, &self.weights);

        let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        artifact::put_section(&mut out, TAG_TRNC, &payload);
        let checksum = crc32(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes a checkpoint, verifying magic, version and checksum
    /// before trusting any field.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] with a typed [`ArtifactError`]:
    /// `BadMagic` / `UnsupportedVersion` / `ChecksumMismatch` for a file
    /// that is not a healthy artifact, `Truncated` or `Malformed` for a
    /// structurally broken `TRNC` section (corrupt epoch/length fields,
    /// an impossible RNG state, a missing section).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        decode(bytes).map_err(RuntimeError::Artifact)
    }

    /// Writes the checkpoint to `path` through
    /// [`artifact::atomic_write`]: a crash mid-save leaves the previous
    /// checkpoint file intact.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] wrapping the I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        atomic_write(path, &self.to_bytes())
            .map_err(|e| RuntimeError::Artifact(ArtifactError::from(e)))
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// See [`Self::from_bytes`]; file-system failures surface as
    /// [`ArtifactError::Io`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path.as_ref())
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| RuntimeError::Artifact(ArtifactError::from(e)))?;
        Self::from_bytes(&bytes)
    }
}

fn decode(bytes: &[u8]) -> std::result::Result<TrainingCheckpoint, ArtifactError> {
    if bytes.len() < MAGIC.len() {
        return Err(ArtifactError::Truncated { context: "magic" });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let mut c = artifact::Cursor::new(&bytes[MAGIC.len()..]);
    let version = c.u32("version")?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if bytes.len() < MAGIC.len() + 8 + 4 {
        return Err(ArtifactError::Truncated {
            context: "checksum",
        });
    }
    // The checksum is verified before any section is trusted, exactly as
    // the model decoder does.
    let body_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..body_len]);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }

    let mut c = artifact::Cursor::new(&bytes[MAGIC.len() + 4..body_len]);
    let section_count = c.u32("section count")?;
    let mut checkpoint = None;
    for _ in 0..section_count {
        let tag: [u8; 4] = c.take(4, "section tag")?.try_into().expect("4 bytes");
        let len = c.u64_usize("section length")?;
        let payload = c.take(len, "section payload")?;
        // Unknown tags are future minor extensions: skipped.
        if tag == TAG_TRNC {
            checkpoint = Some(decode_trnc(payload)?);
        }
    }
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "bytes after last section",
        });
    }
    checkpoint.ok_or(ArtifactError::Malformed {
        context: "missing TRNC section",
    })
}

fn decode_trnc(payload: &[u8]) -> std::result::Result<TrainingCheckpoint, ArtifactError> {
    let mut c = artifact::Cursor::new(payload);
    let epoch = c.u64("TRNC epoch")?;
    let samples_seen = c.u64("TRNC samples seen")?;
    let seed = c.u64("TRNC seed")?;
    let step_scale = c.f64("TRNC step scale")?;
    let last_mse = c.f64("TRNC last mse")?;
    if !(step_scale.is_finite() && step_scale > 0.0) {
        return Err(ArtifactError::Malformed {
            context: "TRNC step scale",
        });
    }
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = c.u64("TRNC rng state")?;
    }
    if rng_state == [0, 0, 0, 0] {
        // xoshiro256++ can never occupy the all-zero state; a checkpoint
        // carrying it is corrupt by construction.
        return Err(ArtifactError::Malformed {
            context: "TRNC rng state",
        });
    }
    // `get_matrix` verifies the announced dimensions consume exactly the
    // remaining payload, so corrupt length fields fail typed here.
    let weights = artifact::get_matrix(&mut c, "TRNC weights")?;
    Ok(TrainingCheckpoint {
        weights,
        epoch,
        samples_seen,
        seed,
        step_scale,
        last_mse,
        rng_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingCheckpoint {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(41);
        for _ in 0..13 {
            rng.next_u64();
        }
        TrainingCheckpoint {
            weights: Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64 * 0.31).sin()),
            epoch: 7,
            samples_seen: 7 * 120,
            seed: 41,
            step_scale: 0.004_2,
            last_mse: 0.37,
            rng_state: rng.state(),
        }
    }

    fn checkpoint_err(r: Result<TrainingCheckpoint>) -> ArtifactError {
        match r {
            Err(RuntimeError::Artifact(e)) => e,
            other => panic!("expected an artifact error, got {other:?}"),
        }
    }

    fn reseal(bytes: &mut [u8]) {
        let body = bytes.len() - 4;
        let crc = crc32(&bytes[..body]).to_le_bytes();
        bytes[body..].copy_from_slice(&crc);
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let ck = sample();
        let revived = TrainingCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(revived, ck);
        // The revived RNG continues the original stream bit-exactly.
        let mut a = ck.rng().unwrap();
        let mut b = revived.rng().unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn save_load_round_trip() {
        let ck = sample();
        let path = std::env::temp_dir().join(format!("vxrt-ckpt-{}.bin", std::process::id()));
        ck.save(&path).unwrap();
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ck);
    }

    #[test]
    fn flipped_bit_is_a_checksum_mismatch() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            checkpoint_err(TrainingCheckpoint::from_bytes(&bytes)),
            ArtifactError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn every_prefix_fails_loudly() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = checkpoint_err(TrainingCheckpoint::from_bytes(&bytes[..cut]));
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. }
                        | ArtifactError::ChecksumMismatch { .. }
                        | ArtifactError::BadMagic
                ),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn all_zero_rng_state_is_malformed() {
        let mut ck = sample();
        ck.rng_state = [0; 4];
        assert!(ck.rng().is_none());
        let bytes = ck.to_bytes();
        assert!(matches!(
            checkpoint_err(TrainingCheckpoint::from_bytes(&bytes)),
            ArtifactError::Malformed {
                context: "TRNC rng state"
            }
        ));
    }

    #[test]
    fn corrupt_weight_dimensions_are_malformed() {
        let ck = sample();
        let mut bytes = ck.to_bytes();
        // The weights' row count sits 56 bytes into the TRNC payload
        // (5 u64/f64 fields + 4 rng words); the section payload starts
        // after magic + version + count + tag + length.
        let payload_at = MAGIC.len() + 4 + 4 + 4 + 8;
        let rows_at = payload_at + 9 * 8;
        bytes[rows_at..rows_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            checkpoint_err(TrainingCheckpoint::from_bytes(&bytes)),
            ArtifactError::Malformed { .. } | ArtifactError::Truncated { .. }
        ));
    }

    #[test]
    fn model_artifact_is_not_a_checkpoint() {
        // A model artifact shares the container but has no TRNC section;
        // loading it as a checkpoint must fail typed, not panic.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            checkpoint_err(TrainingCheckpoint::from_bytes(&out)),
            ArtifactError::Malformed {
                context: "missing TRNC section"
            }
        ));
    }
}
