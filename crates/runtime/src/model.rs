//! The immutable compiled model: a frozen crossbar read path.
//!
//! Compilation happens once — [`CompiledModel::compile`] takes the
//! snapshot of a programmed differential pair, the logical→physical row
//! routing, and the read-path options, performs the (expensive) IR-drop
//! calibration if requested, and freezes everything the read needs:
//!
//! * the two conductance matrices as programmed,
//! * the differential scale `s` with `w = (i⁺ − i⁻)/s`,
//! * the calibrated per-cell attenuation folded into *effective*
//!   conductance matrices (`g∘a`, computed once instead of per sample),
//! * converter resolutions (ADC on the columns, DAC on the rows),
//! * the row routing.
//!
//! Inference is then a pure function of the input: no fabrication state,
//! no solver except in [`Fidelity::Exact`] mode, and no per-sample
//! conductance-matrix rebuilds. The per-sample arithmetic is kept
//! bit-identical to the live read of
//! [`vortex_xbar::pair::DifferentialPair::read`] — same values, same
//! floating-point operation order — so a compiled model reproduces the
//! training-side evaluation numbers exactly.

use vortex_device::drift::{DriftProcess, RetentionModel};
use vortex_linalg::{vector, Matrix};
use vortex_nn::dataset::Dataset;
use vortex_nn::executor::Parallelism;
use vortex_nn::pool::WorkerPool;
use vortex_xbar::circuit::NodalAnalysis;
use vortex_xbar::encoding::EncodingTable;
use vortex_xbar::irdrop::ComputeAttenuationMap;
use vortex_xbar::pair::FrozenPairState;
use vortex_xbar::sensing::{Adc, Dac};

use crate::kernels::{gemv_ref, FastGemv};
use crate::{Result, RuntimeError};

/// Samples per executor chunk in [`CompiledModel::infer_batch`]: large
/// enough to amortize channel traffic, small enough to keep a 100-sample
/// test set parallel.
const BATCH_CHUNK: usize = 32;

/// Read-path fidelity of a compiled model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Perfect wires: `i = gᵀx`.
    Ideal,
    /// Calibrated IR-drop: per-cell attenuation from one exact mesh solve
    /// at compile time, folded into effective conductances.
    Calibrated,
    /// Full nodal solve per sample (small arrays only).
    Exact,
}

impl Fidelity {
    /// Stable wire code used by the artifact codec.
    pub(crate) fn code(self) -> u8 {
        match self {
            Fidelity::Ideal => 0,
            Fidelity::Calibrated => 1,
            Fidelity::Exact => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Fidelity::Ideal),
            1 => Some(Fidelity::Calibrated),
            2 => Some(Fidelity::Exact),
            _ => None,
        }
    }
}

/// Peripheral configuration of the read path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOptions {
    /// Circuit fidelity.
    pub fidelity: Fidelity,
    /// Column ADC (`None` = ideal sensing).
    pub adc: Option<Adc>,
    /// Row driver DAC (`None` = ideal drivers).
    pub dac: Option<Dac>,
}

impl ReadOptions {
    /// Ideal periphery at the given fidelity.
    pub fn new(fidelity: Fidelity) -> Self {
        Self {
            fidelity,
            adc: None,
            dac: None,
        }
    }
}

/// A frozen probe set with golden predictions: the artifact carries the
/// answers the model gave at compile time, so a health monitor can later
/// measure how far drift (or any other degradation) has pulled the live
/// read path away from its freshly programmed behaviour — without access
/// to labeled data.
#[derive(Debug, Clone, PartialEq)]
pub struct CanarySet {
    inputs: Vec<Vec<f64>>,
    golden: Vec<u8>,
}

impl CanarySet {
    /// Pairs probe inputs with their golden predictions.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] when the set is empty,
    /// the counts disagree, or the inputs are ragged/non-finite.
    pub fn new(inputs: Vec<Vec<f64>>, golden: Vec<u8>) -> Result<Self> {
        if inputs.is_empty() {
            return Err(RuntimeError::InvalidParameter {
                name: "canary",
                requirement: "canary set must contain at least one input",
            });
        }
        if inputs.len() != golden.len() {
            return Err(RuntimeError::InvalidParameter {
                name: "canary",
                requirement: "canary inputs and golden predictions must pair up",
            });
        }
        let width = inputs[0].len();
        for x in &inputs {
            if x.len() != width || x.iter().any(|v| !v.is_finite()) {
                return Err(RuntimeError::InvalidParameter {
                    name: "canary",
                    requirement: "canary inputs must be finite and equally sized",
                });
            }
        }
        Ok(Self { inputs, golden })
    }

    /// The probe inputs, in order.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.inputs
    }

    /// The golden predictions, one per input.
    pub fn golden(&self) -> &[u8] {
        &self.golden
    }

    /// Number of probes in the set.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Fraction of probes `model` still answers like the golden run.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::infer`].
    pub fn accuracy_on(&self, model: &CompiledModel) -> Result<f64> {
        // Batched so the probes share one scratch allocation and go
        // through the same (possibly certified-f32) kernel as serving
        // traffic; labels are identical to per-sample `infer` by the
        // certification contract.
        let samples: Vec<&[f64]> = self.inputs.iter().map(Vec::as_slice).collect();
        let predicted = model.infer_batch(&samples, Parallelism::Serial)?;
        let hits = predicted
            .iter()
            .zip(&self.golden)
            .filter(|(p, g)| p == g)
            .count();
        Ok(hits as f64 / self.inputs.len() as f64)
    }
}

/// One device stuck at a fixed conductance (a fabrication or lifetime
/// stuck-at defect injected into a frozen read path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFault {
    /// Physical row of the faulty device.
    pub row: usize,
    /// Column of the faulty device.
    pub col: usize,
    /// `true` targets the negative crossbar, `false` the positive one.
    pub negative: bool,
    /// Conductance the device is stuck at (S).
    pub conductance: f64,
}

/// Per-thread scratch buffers for the batched read.
struct Scratch {
    routed: Vec<f64>,
    i_pos: Vec<f64>,
    i_neg: Vec<f64>,
    scores: Vec<f64>,
    /// f32 staging for the certified fast path (empty when disabled).
    x32: Vec<f32>,
    s32: Vec<f32>,
}

/// An immutable, servable model: compile once, infer many.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    // --- persisted state (the artifact codec serializes exactly this) ---
    pub(crate) fidelity: Fidelity,
    pub(crate) r_wire: f64,
    pub(crate) scale: f64,
    pub(crate) adc: Option<Adc>,
    pub(crate) dac: Option<Dac>,
    pub(crate) physical_rows: usize,
    pub(crate) assignment: Vec<usize>,
    pub(crate) g_pos: Matrix,
    pub(crate) g_neg: Matrix,
    pub(crate) att_pos: Option<Matrix>,
    pub(crate) att_neg: Option<Matrix>,
    pub(crate) canary: Option<CanarySet>,
    pub(crate) encoding: EncodingTable,
    // --- derived state, rebuilt on load ---
    eff_pos: Matrix,
    eff_neg: Matrix,
    exact: Option<NodalAnalysis>,
    /// The certified f32 label fast path; `None` for fidelities/periphery
    /// where the tolerance proof does not hold (exact solve, quantized
    /// sensing) or when disabled via [`Self::with_reference_kernel`].
    fast: Option<FastGemv>,
}

impl CompiledModel {
    /// Compiles a programmed pair snapshot into a servable model.
    ///
    /// `assignment[p]` is the physical row carrying logical input `p`
    /// (unassigned physical rows receive zero drive). For
    /// [`Fidelity::Calibrated`], `calibration` must hold a logical-space
    /// reference input (typically the mean test input); the one exact mesh
    /// solve per crossbar happens here, never at inference time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for inconsistent shapes
    /// or routing, and propagates calibration solver errors.
    pub fn compile(
        state: &FrozenPairState,
        assignment: &[usize],
        options: &ReadOptions,
        calibration: Option<&[f64]>,
    ) -> Result<Self> {
        Self::compile_encoded(
            state,
            assignment,
            options,
            calibration,
            EncodingTable::differential(state.rows()),
        )
    }

    /// [`Self::compile`] carrying the per-row [`EncodingTable`] the
    /// compiler's weight encoding produced; the table is persisted with
    /// the artifact (format v3) so a reloaded model still knows its own
    /// programming resolution and pulse cost.
    ///
    /// # Errors
    ///
    /// See [`Self::compile`]; additionally rejects a table whose row
    /// count disagrees with the frozen pair.
    pub fn compile_encoded(
        state: &FrozenPairState,
        assignment: &[usize],
        options: &ReadOptions,
        calibration: Option<&[f64]>,
        encoding: EncodingTable,
    ) -> Result<Self> {
        let _span = vortex_obs::span!("runtime.compile_seconds");
        vortex_obs::counter!("runtime.compiles").incr();
        let (att_pos, att_neg) = match options.fidelity {
            Fidelity::Calibrated => {
                let reference = match calibration {
                    Some(c) => route(assignment, state.rows(), c)?,
                    None => {
                        return Err(RuntimeError::InvalidParameter {
                            name: "calibration",
                            requirement: "calibrated fidelity needs a reference input",
                        })
                    }
                };
                let na = NodalAnalysis::new(state.rows(), state.cols(), state.r_wire)?;
                let pos = ComputeAttenuationMap::calibrate(&na, &state.g_pos, &reference)?;
                let neg = ComputeAttenuationMap::calibrate(&na, &state.g_neg, &reference)?;
                (
                    Some(pos.attenuation().clone()),
                    Some(neg.attenuation().clone()),
                )
            }
            Fidelity::Ideal | Fidelity::Exact => (None, None),
        };
        Self::from_parts(
            options.fidelity,
            state.r_wire,
            state.scale,
            options.adc,
            options.dac,
            state.rows(),
            assignment.to_vec(),
            state.g_pos.clone(),
            state.g_neg.clone(),
            att_pos,
            att_neg,
            None,
            encoding,
        )
    }

    /// Assembles a model from its persisted parts, validating and
    /// rebuilding the derived read state. This is the single constructor
    /// both [`Self::compile`] and the artifact decoder go through.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        fidelity: Fidelity,
        r_wire: f64,
        scale: f64,
        adc: Option<Adc>,
        dac: Option<Dac>,
        physical_rows: usize,
        assignment: Vec<usize>,
        g_pos: Matrix,
        g_neg: Matrix,
        att_pos: Option<Matrix>,
        att_neg: Option<Matrix>,
        canary: Option<CanarySet>,
        encoding: EncodingTable,
    ) -> Result<Self> {
        if encoding.rows() != physical_rows {
            return Err(RuntimeError::InvalidParameter {
                name: "encoding",
                requirement: "encoding table must cover every physical row",
            });
        }
        if g_pos.rows() == 0 || g_pos.cols() == 0 {
            return Err(RuntimeError::InvalidParameter {
                name: "g_pos",
                requirement: "conductance matrices must be non-empty",
            });
        }
        if g_pos.shape() != g_neg.shape() || g_pos.rows() != physical_rows {
            return Err(RuntimeError::InvalidParameter {
                name: "g_neg",
                requirement: "conductance matrices must share the physical shape",
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(RuntimeError::InvalidParameter {
                name: "scale",
                requirement: "must be finite and positive",
            });
        }
        if !(r_wire.is_finite() && r_wire >= 0.0) {
            return Err(RuntimeError::InvalidParameter {
                name: "r_wire",
                requirement: "must be finite and non-negative",
            });
        }
        let mut seen = vec![false; physical_rows];
        for &q in &assignment {
            if q >= physical_rows || seen[q] {
                return Err(RuntimeError::InvalidParameter {
                    name: "assignment",
                    requirement: "must map logical rows to distinct physical rows in range",
                });
            }
            seen[q] = true;
        }
        match fidelity {
            Fidelity::Calibrated => {
                for att in [&att_pos, &att_neg] {
                    match att {
                        Some(a) if a.shape() == g_pos.shape() => {}
                        _ => {
                            return Err(RuntimeError::InvalidParameter {
                                name: "attenuation",
                                requirement:
                                    "calibrated models need attenuation maps of the array shape",
                            })
                        }
                    }
                }
            }
            Fidelity::Ideal | Fidelity::Exact => {
                if att_pos.is_some() || att_neg.is_some() {
                    return Err(RuntimeError::InvalidParameter {
                        name: "attenuation",
                        requirement: "only calibrated models carry attenuation maps",
                    });
                }
            }
        }
        // Derived read state: effective conductances (the per-sample
        // hadamard of the live read, done once), and the solver for the
        // exact path.
        let (eff_pos, eff_neg) = match fidelity {
            Fidelity::Calibrated => {
                let ap = att_pos.as_ref().expect("validated above");
                let an = att_neg.as_ref().expect("validated above");
                (g_pos.hadamard(ap), g_neg.hadamard(an))
            }
            Fidelity::Ideal | Fidelity::Exact => (g_pos.clone(), g_neg.clone()),
        };
        let exact = match fidelity {
            Fidelity::Exact => Some(NodalAnalysis::new(g_pos.rows(), g_pos.cols(), r_wire)?),
            _ => None,
        };
        // The certified f32 label path exists only where its tolerance
        // proof holds: a linear read (no per-sample nodal solve) with
        // ideal sensing. A DAC is fine — it quantizes the *input* in f64
        // before either kernel sees it. ADC quantization happens *after*
        // the product, where an f32 score could land in a different bin,
        // so those models stay on the reference.
        let fast = match fidelity {
            Fidelity::Ideal | Fidelity::Calibrated if adc.is_none() => {
                Some(FastGemv::from_effective(&eff_pos, &eff_neg, scale))
            }
            _ => None,
        };
        if let Some(c) = &canary {
            if c.inputs[0].len() != assignment.len() {
                return Err(RuntimeError::InvalidParameter {
                    name: "canary",
                    requirement: "canary input length must match the logical row count",
                });
            }
            if c.golden.iter().any(|&g| usize::from(g) >= g_pos.cols()) {
                return Err(RuntimeError::InvalidParameter {
                    name: "canary",
                    requirement: "golden predictions must name existing classes",
                });
            }
        }
        Ok(Self {
            fidelity,
            r_wire,
            scale,
            adc,
            dac,
            physical_rows,
            assignment,
            g_pos,
            g_neg,
            att_pos,
            att_neg,
            canary,
            encoding,
            eff_pos,
            eff_neg,
            exact,
            fast,
        })
    }

    /// Number of physical crossbar rows.
    pub fn rows(&self) -> usize {
        self.physical_rows
    }

    /// Number of logical input features.
    pub fn logical_rows(&self) -> usize {
        self.assignment.len()
    }

    /// Number of output classes (crossbar columns).
    pub fn classes(&self) -> usize {
        self.g_pos.cols()
    }

    /// Read-path fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Conductance per unit weight.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Wire resistance per segment (Ω).
    pub fn r_wire(&self) -> f64 {
        self.r_wire
    }

    /// The logical→physical row assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Column ADC, if sensing is quantized.
    pub fn adc(&self) -> Option<&Adc> {
        self.adc.as_ref()
    }

    /// Row driver DAC, if input quantization is modeled.
    pub fn dac(&self) -> Option<&Dac> {
        self.dac.as_ref()
    }

    /// The weight matrix the frozen pair realizes under ideal readout.
    pub fn realized_weights(&self) -> Matrix {
        self.g_pos.sub(&self.g_neg).scaled(1.0 / self.scale)
    }

    /// The frozen canary set, if one was baked into this model.
    pub fn canary(&self) -> Option<&CanarySet> {
        self.canary.as_ref()
    }

    /// How this model's weights were encoded onto devices: the per-row
    /// level table the compile-time [`vortex_xbar::encoding`] strategy
    /// produced (all-continuous for pre-v3 artifacts and the default
    /// differential encoding).
    pub fn encoding(&self) -> &EncodingTable {
        &self.encoding
    }

    /// Freezes `inputs` as the model's canary set: the *current* read
    /// path answers each probe, and those answers become the golden
    /// predictions persisted with the artifact. Call this on a freshly
    /// compiled model, before any degradation is applied.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for an empty, ragged,
    /// or wrongly sized probe set; propagates read-path errors.
    pub fn with_canary_inputs(mut self, inputs: Vec<Vec<f64>>) -> Result<Self> {
        let mut golden = Vec::with_capacity(inputs.len());
        for x in &inputs {
            golden.push(self.infer(x)?);
        }
        // `infer` above already vetted every input's length, so the set
        // is consistent with the routing by construction.
        self.canary = Some(CanarySet::new(inputs, golden)?);
        Ok(self)
    }

    /// Fraction of canary probes the model still answers like the golden
    /// run (1.0 on a pristine model by construction).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] when the model carries
    /// no canary set; propagates read-path errors.
    pub fn canary_accuracy(&self) -> Result<f64> {
        match &self.canary {
            Some(c) => c.accuracy_on(self),
            None => Err(RuntimeError::InvalidParameter {
                name: "canary",
                requirement: "model carries no canary set",
            }),
        }
    }

    /// A drift-aged copy: each device's conductance is multiplied by its
    /// entry of the per-crossbar decay matrices (values in `(0, 1]`).
    ///
    /// The canary set and, for calibrated models, the compile-time
    /// attenuation maps are carried over unchanged — aging degrades the
    /// read while the model keeps *believing* its fresh calibration,
    /// exactly the mismatch a health monitor exists to catch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for decay matrices of
    /// the wrong shape or with entries outside `(0, 1]`.
    pub fn aged(&self, decay_pos: &Matrix, decay_neg: &Matrix) -> Result<Self> {
        for (name, d) in [("decay_pos", decay_pos), ("decay_neg", decay_neg)] {
            if d.shape() == self.g_pos.shape()
                && d.as_slice().iter().any(|&v| !(v > 0.0 && v <= 1.0))
            {
                return Err(RuntimeError::InvalidParameter {
                    name,
                    requirement: "decay factors must lie in (0, 1]",
                });
            }
        }
        self.with_conductance_factors(decay_pos, decay_neg)
    }

    /// A copy whose conductances are multiplied elementwise by arbitrary
    /// positive factor matrices — the general form of [`Self::aged`].
    /// Retention decay shrinks a device (factor ≤ 1); a temperature
    /// excursion can *raise* its conductance (factor > 1), which is why
    /// lifetime simulation needs this wider-domain sibling. Calibration
    /// maps and the canary set carry over unchanged, as in
    /// [`Self::aged`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for factor matrices of
    /// the wrong shape or with non-finite/non-positive entries.
    pub fn with_conductance_factors(&self, f_pos: &Matrix, f_neg: &Matrix) -> Result<Self> {
        for (name, m) in [("f_pos", f_pos), ("f_neg", f_neg)] {
            if m.shape() != self.g_pos.shape() {
                return Err(RuntimeError::InvalidParameter {
                    name,
                    requirement: "factor matrix must match the crossbar shape",
                });
            }
            if m.as_slice().iter().any(|&v| !(v.is_finite() && v > 0.0)) {
                return Err(RuntimeError::InvalidParameter {
                    name,
                    requirement: "conductance factors must be finite and positive",
                });
            }
        }
        Self::from_parts(
            self.fidelity,
            self.r_wire,
            self.scale,
            self.adc,
            self.dac,
            self.physical_rows,
            self.assignment.clone(),
            self.g_pos.hadamard(f_pos),
            self.g_neg.hadamard(f_neg),
            self.att_pos.clone(),
            self.att_neg.clone(),
            self.canary.clone(),
            self.encoding.clone(),
        )
    }

    /// [`Self::aged`] under the workspace's one drift implementation:
    /// [`Self::age_with_process`] with `DriftProcess::new(*retention,
    /// seed)` — one ν per device (seeded, so bit-reproducible — positive
    /// crossbar sampled first, row-major), evaluated after `t_s` seconds.
    ///
    /// # Errors
    ///
    /// See [`Self::aged`].
    pub fn age_with(&self, retention: &RetentionModel, t_s: f64, seed: u64) -> Result<Self> {
        self.age_with_process(&DriftProcess::new(*retention, seed), t_s)
    }

    /// [`Self::aged`] with decay matrices drawn from a
    /// [`DriftProcess`] — the single drift definition shared by the
    /// chaos plan and the lifetime timeline. Pure in `(process, t_s)`.
    ///
    /// # Errors
    ///
    /// See [`Self::aged`].
    pub fn age_with_process(&self, process: &DriftProcess, t_s: f64) -> Result<Self> {
        let (rows, cols) = self.g_pos.shape();
        let (decay_pos, decay_neg) = process.decay_matrices(rows, cols, t_s);
        self.aged(&decay_pos, &decay_neg)
    }

    /// A copy with stuck-at device faults applied: each fault pins one
    /// device of one crossbar to a fixed conductance. Calibration maps
    /// and the canary set carry over, as in [`Self::aged`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for out-of-range cells
    /// or non-finite/negative conductances.
    pub fn with_cell_faults(&self, faults: &[CellFault]) -> Result<Self> {
        let mut g_pos = self.g_pos.clone();
        let mut g_neg = self.g_neg.clone();
        for f in faults {
            if f.row >= g_pos.rows() || f.col >= g_pos.cols() {
                return Err(RuntimeError::InvalidParameter {
                    name: "faults",
                    requirement: "fault cell must lie inside the crossbar",
                });
            }
            if !(f.conductance.is_finite() && f.conductance >= 0.0) {
                return Err(RuntimeError::InvalidParameter {
                    name: "faults",
                    requirement: "stuck conductance must be finite and non-negative",
                });
            }
            let target = if f.negative { &mut g_neg } else { &mut g_pos };
            target[(f.row, f.col)] = f.conductance;
        }
        Self::from_parts(
            self.fidelity,
            self.r_wire,
            self.scale,
            self.adc,
            self.dac,
            self.physical_rows,
            self.assignment.clone(),
            g_pos,
            g_neg,
            self.att_pos.clone(),
            self.att_neg.clone(),
            self.canary.clone(),
            self.encoding.clone(),
        )
    }

    fn scratch(&self) -> Scratch {
        let (x32, s32) = if self.fast.is_some() {
            (vec![0f32; self.physical_rows], vec![0f32; self.classes()])
        } else {
            (Vec::new(), Vec::new())
        };
        Scratch {
            routed: vec![0.0; self.physical_rows],
            i_pos: vec![0.0; self.classes()],
            i_neg: vec![0.0; self.classes()],
            scores: vec![0.0; self.classes()],
            x32,
            s32,
        }
    }

    /// Whether this model currently answers labels through the certified
    /// f32 fast path (with per-sample fallback to the reference).
    pub fn fast_path_enabled(&self) -> bool {
        self.fast.is_some()
    }

    /// This model with the f32 fast path disabled: every label comes from
    /// the f64 reference kernel. Predictions are identical by the
    /// certification contract — this switch exists so tests and benches
    /// can measure and assert exactly that. The setting applies to this
    /// instance only; derived copies ([`Self::aged`],
    /// [`Self::with_cell_faults`], artifact round-trips) rebuild their
    /// read state and re-enable the fast path where eligible.
    pub fn with_reference_kernel(mut self) -> Self {
        self.fast = None;
        self
    }

    /// One frozen read into `s.scores`, bit-exact with the live pair read.
    fn score_into(&self, x: &[f64], s: &mut Scratch) -> Result<()> {
        if x.len() != self.assignment.len() {
            return Err(RuntimeError::InvalidParameter {
                name: "x",
                requirement: "input length must match the logical row count",
            });
        }
        s.routed.fill(0.0);
        for (p, &q) in self.assignment.iter().enumerate() {
            s.routed[q] = x[p];
        }
        if let Some(dac) = &self.dac {
            for v in &mut s.routed {
                *v = dac.convert(*v);
            }
        }
        match &self.exact {
            None => {
                gemv_ref(&self.eff_pos, &s.routed, &mut s.i_pos);
                gemv_ref(&self.eff_neg, &s.routed, &mut s.i_neg);
            }
            Some(na) => {
                let ip = na.compute(&self.g_pos, &s.routed)?.column_currents;
                let in_ = na.compute(&self.g_neg, &s.routed)?.column_currents;
                s.i_pos.copy_from_slice(&ip);
                s.i_neg.copy_from_slice(&in_);
            }
        }
        if let Some(adc) = &self.adc {
            for v in &mut s.i_pos {
                *v = adc.quantize(*v);
            }
            for v in &mut s.i_neg {
                *v = adc.quantize(*v);
            }
        }
        for ((out, &p), &n) in s.scores.iter_mut().zip(&s.i_pos).zip(&s.i_neg) {
            *out = (p - n) / self.scale;
        }
        Ok(())
    }

    /// Class scores for one logical input vector.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidParameter`] for a wrong input length
    /// and propagates exact-solver errors.
    pub fn scores(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut s = self.scratch();
        self.score_into(x, &mut s)?;
        Ok(s.scores)
    }

    /// One label, fast path first: route + DAC in f64, then ask the
    /// certified f32 kernel; any sample it cannot certify (tight margin,
    /// NaN, non-finite input) reruns through the f64 reference. Returns
    /// the label and whether the fast path answered it.
    fn label_into(&self, x: &[f64], s: &mut Scratch) -> Result<(u8, bool)> {
        if let Some(fast) = &self.fast {
            if x.len() != self.assignment.len() {
                return Err(RuntimeError::InvalidParameter {
                    name: "x",
                    requirement: "input length must match the logical row count",
                });
            }
            s.routed.fill(0.0);
            for (p, &q) in self.assignment.iter().enumerate() {
                s.routed[q] = x[p];
            }
            if let Some(dac) = &self.dac {
                for v in &mut s.routed {
                    *v = dac.convert(*v);
                }
            }
            if let Some(label) = fast.certified_label(&s.routed, &mut s.x32, &mut s.s32) {
                return Ok((label as u8, true));
            }
        }
        self.score_into(x, s)?;
        Ok((vector::argmax(&s.scores).unwrap_or(0) as u8, false))
    }

    /// Predicted class of one sample (argmax of [`Self::scores`]).
    ///
    /// Labels may be answered by the certified f32 fast path — which by
    /// construction agrees with the reference argmax exactly (see
    /// [`crate::kernels`]) — so this is always the same class
    /// [`Self::scores`] would yield.
    ///
    /// # Errors
    ///
    /// See [`Self::scores`].
    pub fn infer(&self, x: &[f64]) -> Result<u8> {
        let mut s = self.scratch();
        let (label, fast) = self.label_into(x, &mut s)?;
        if fast {
            vortex_obs::counter!("runtime.fast_labels").incr();
        } else {
            vortex_obs::counter!("runtime.fast_fallbacks").incr();
        }
        Ok(label)
    }

    /// Predicted classes for a batch of samples, fanned out over the
    /// persistent [`WorkerPool`].
    ///
    /// Samples are split into fixed-size chunks; each chunk reuses one set
    /// of scratch buffers, and chunks are claimed dynamically from the
    /// process-wide pool (no per-call thread spawn). Predictions are
    /// **bit-identical** for every [`Parallelism`] setting, and arrive in
    /// sample order. When several samples fail, the error of the earliest
    /// one is returned.
    ///
    /// # Errors
    ///
    /// See [`Self::scores`].
    pub fn infer_batch(&self, samples: &[&[f64]], parallelism: Parallelism) -> Result<Vec<u8>> {
        let batch_start = std::time::Instant::now();
        let chunks = samples.len().div_ceil(BATCH_CHUNK);
        // Each chunk's labels depend only on its sample range — never on
        // which pool thread runs it — so the fan-out is deterministic.
        let run_chunk = |k: usize| {
            let lo = k * BATCH_CHUNK;
            let hi = (lo + BATCH_CHUNK).min(samples.len());
            let mut s = self.scratch();
            let mut out = Vec::with_capacity(hi - lo);
            let mut fast_hits = 0usize;
            for x in &samples[lo..hi] {
                let (label, fast) = self.label_into(x, &mut s)?;
                fast_hits += usize::from(fast);
                out.push(label);
            }
            Ok::<(Vec<u8>, usize), RuntimeError>((out, fast_hits))
        };
        let workers = parallelism.resolve().min(chunks.max(1));
        let per_chunk: Vec<std::result::Result<(Vec<u8>, usize), RuntimeError>> = if workers <= 1 {
            (0..chunks).map(run_chunk).collect()
        } else {
            WorkerPool::global().run_indexed(chunks, workers, run_chunk)
        };
        let mut predictions = Vec::with_capacity(samples.len());
        let mut fast_total = 0usize;
        for chunk in per_chunk {
            let (labels, fast_hits) = chunk?;
            predictions.extend(labels);
            fast_total += fast_hits;
        }
        let elapsed = batch_start.elapsed().as_secs_f64();
        vortex_obs::histogram!("runtime.batch_seconds").record(elapsed);
        vortex_obs::counter!("runtime.samples").add(samples.len() as u64);
        vortex_obs::counter!("runtime.fast_labels").add(fast_total as u64);
        vortex_obs::counter!("runtime.fast_fallbacks").add((predictions.len() - fast_total) as u64);
        if !samples.is_empty() && elapsed > 0.0 {
            vortex_obs::gauge!("runtime.samples_per_sec").set(samples.len() as f64 / elapsed);
        }
        Ok(predictions)
    }

    /// Predicted classes for every sample of a dataset, in sample order.
    ///
    /// # Errors
    ///
    /// See [`Self::infer_batch`].
    pub fn infer_dataset(&self, data: &Dataset, parallelism: Parallelism) -> Result<Vec<u8>> {
        let samples: Vec<&[f64]> = (0..data.len()).map(|i| data.image(i)).collect();
        self.infer_batch(&samples, parallelism)
    }

    /// Fraction of `data` classified correctly (0 for an empty dataset).
    ///
    /// # Errors
    ///
    /// See [`Self::infer_batch`].
    pub fn accuracy(&self, data: &Dataset) -> Result<f64> {
        self.accuracy_with(data, Parallelism::Serial)
    }

    /// [`Self::accuracy`] with an explicit executor configuration — the
    /// result is identical for every setting.
    ///
    /// # Errors
    ///
    /// See [`Self::infer_batch`].
    pub fn accuracy_with(&self, data: &Dataset, parallelism: Parallelism) -> Result<f64> {
        let predictions = self.infer_dataset(data, parallelism)?;
        Ok(vortex_nn::metrics::accuracy_of_predictions(
            &predictions,
            data,
        ))
    }
}

/// Routes a logical input onto the physical rows (unassigned rows get
/// zero drive), validating the length.
fn route(assignment: &[usize], physical_rows: usize, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != assignment.len() {
        return Err(RuntimeError::InvalidParameter {
            name: "calibration",
            requirement: "reference length must match the logical row count",
        });
    }
    let mut out = vec![0.0; physical_rows];
    for (p, &q) in assignment.iter().enumerate() {
        out[q] = x[p];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_device::DeviceParams;
    use vortex_linalg::rng::Xoshiro256PlusPlus;
    use vortex_xbar::crossbar::CrossbarConfig;
    use vortex_xbar::pair::{DifferentialPair, ReadCircuit, WeightMapping};

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    fn programmed_pair(rows: usize, cols: usize, r_wire: f64, seed: u64) -> DifferentialPair {
        let device = DeviceParams::default();
        let config = CrossbarConfig {
            r_wire,
            ..CrossbarConfig::ideal(rows, cols, device)
        };
        let mapping = WeightMapping::new(&device, 1.0).unwrap();
        let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng(seed)).unwrap();
        let w = Matrix::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.53).sin() * 0.8
        });
        pair.program_open_loop(&w, None, &mut rng(seed + 1))
            .unwrap();
        pair
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn ideal_model_matches_live_read_bit_for_bit() {
        let pair = programmed_pair(6, 3, 0.0, 5);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(6),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let x = [0.3, 0.0, 1.0, 0.7, 0.2, 0.9];
        let live = pair.read(&x, &ReadCircuit::Ideal, None).unwrap();
        let frozen = model.scores(&x).unwrap();
        for (a, b) in live.iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits(), "live {a} vs frozen {b}");
        }
    }

    #[test]
    fn calibrated_model_matches_live_fast_read_bit_for_bit() {
        let pair = programmed_pair(8, 3, 8.0, 9);
        let reference = vec![0.5; 8];
        let live_circuit = ReadCircuit::fast_for(&pair, &reference).unwrap();
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(8),
            &ReadOptions::new(Fidelity::Calibrated),
            Some(&reference),
        )
        .unwrap();
        let x = [1.0, 0.0, 0.5, 0.25, 0.8, 0.0, 0.4, 1.0];
        let live = pair.read(&x, &live_circuit, None).unwrap();
        let frozen = model.scores(&x).unwrap();
        for (a, b) in live.iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits(), "live {a} vs frozen {b}");
        }
    }

    #[test]
    fn exact_model_matches_live_exact_read_bit_for_bit() {
        let pair = programmed_pair(5, 2, 12.0, 13);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(5),
            &ReadOptions::new(Fidelity::Exact),
            None,
        )
        .unwrap();
        let x = [0.9, 0.1, 0.0, 0.6, 0.3];
        let live = pair
            .read(&x, &ReadCircuit::exact_for(&pair).unwrap(), None)
            .unwrap();
        let frozen = model.scores(&x).unwrap();
        for (a, b) in live.iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits(), "live {a} vs frozen {b}");
        }
    }

    #[test]
    fn converters_apply_in_the_live_order() {
        let pair = programmed_pair(6, 3, 0.0, 21);
        let adc = Adc::new(6, 6.0 * DeviceParams::default().g_on()).unwrap();
        let dac = Dac::new(4, 1.0).unwrap();
        let options = ReadOptions {
            fidelity: Fidelity::Ideal,
            adc: Some(adc),
            dac: Some(dac),
        };
        let model = CompiledModel::compile(&pair.freeze(), &identity(6), &options, None).unwrap();
        let x = [0.31, 0.77, 0.0, 0.52, 0.93, 0.18];
        let routed = dac.convert_vec(&x);
        let live = pair.read(&routed, &ReadCircuit::Ideal, Some(&adc)).unwrap();
        let frozen = model.scores(&x).unwrap();
        for (a, b) in live.iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits(), "live {a} vs frozen {b}");
        }
    }

    #[test]
    fn routing_redirects_and_zero_fills() {
        let pair = programmed_pair(4, 2, 0.0, 33);
        // Logical 0 → physical 2, logical 1 → physical 0; rows 1 and 3 idle.
        let model = CompiledModel::compile(
            &pair.freeze(),
            &[2, 0],
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        assert_eq!(model.logical_rows(), 2);
        let frozen = model.scores(&[0.4, 0.9]).unwrap();
        let live = pair
            .read(&[0.9, 0.0, 0.4, 0.0], &ReadCircuit::Ideal, None)
            .unwrap();
        for (a, b) in live.iter().zip(&frozen) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_is_bit_exact_across_parallelism() {
        let pair = programmed_pair(8, 4, 0.0, 41);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(8),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let inputs: Vec<Vec<f64>> = (0..101)
            .map(|k| {
                (0..8)
                    .map(|i| ((k * 8 + i) as f64 * 0.17).sin().abs())
                    .collect()
            })
            .collect();
        let samples: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let serial = model.infer_batch(&samples, Parallelism::Serial).unwrap();
        assert_eq!(serial.len(), samples.len());
        for threads in [1, 2, 8] {
            let par = model
                .infer_batch(&samples, Parallelism::Fixed(threads))
                .unwrap();
            assert_eq!(serial, par, "{threads} threads changed predictions");
        }
    }

    #[test]
    fn compile_validates_inputs() {
        let pair = programmed_pair(4, 2, 0.0, 55);
        let state = pair.freeze();
        // Out-of-range physical row.
        assert!(
            CompiledModel::compile(&state, &[0, 9], &ReadOptions::new(Fidelity::Ideal), None)
                .is_err()
        );
        // Duplicate physical row.
        assert!(
            CompiledModel::compile(&state, &[1, 1], &ReadOptions::new(Fidelity::Ideal), None)
                .is_err()
        );
        // Calibrated without a reference.
        assert!(CompiledModel::compile(
            &state,
            &[0, 1, 2, 3],
            &ReadOptions::new(Fidelity::Calibrated),
            None
        )
        .is_err());
        // Wrong input length at inference time.
        let model = CompiledModel::compile(
            &state,
            &[0, 1, 2, 3],
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        assert!(model.infer(&[1.0]).is_err());
    }

    #[test]
    fn canary_is_perfect_when_fresh_and_degrades_with_drift() {
        use vortex_device::drift::RetentionModel;
        let pair = programmed_pair(8, 4, 0.0, 91);
        let inputs: Vec<Vec<f64>> = (0..24)
            .map(|k| {
                (0..8)
                    .map(|i| ((k * 8 + i) as f64 * 0.29).sin().abs())
                    .collect()
            })
            .collect();
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(8),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap()
        .with_canary_inputs(inputs)
        .unwrap();
        // Golden answers come from this very model: perfect by construction.
        assert_eq!(model.canary_accuracy().unwrap(), 1.0);
        assert_eq!(model.canary().unwrap().len(), 24);

        // Severe asymmetric aging flips predictions; the canary notices.
        let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
        let aged = model.age_with(&retention, 1e8, 7).unwrap();
        assert!(
            aged.canary_accuracy().unwrap() < 1.0,
            "aging went unnoticed"
        );
        // The original model is untouched.
        assert_eq!(model.canary_accuracy().unwrap(), 1.0);
        // Aging is bit-deterministic per seed.
        let again = model.age_with(&retention, 1e8, 7).unwrap();
        for (a, b) in aged.g_pos.as_slice().iter().zip(again.g_pos.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn aged_validates_decay_matrices() {
        let pair = programmed_pair(4, 2, 0.0, 3);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(4),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let ones = Matrix::from_fn(4, 2, |_, _| 1.0);
        let wrong_shape = Matrix::from_fn(3, 2, |_, _| 1.0);
        assert!(model.aged(&wrong_shape, &ones).is_err());
        let out_of_range = Matrix::from_fn(4, 2, |_, _| 1.5);
        assert!(model.aged(&ones, &out_of_range).is_err());
        // Identity decay reproduces the model bit-for-bit.
        let same = model.aged(&ones, &ones).unwrap();
        let x = [0.3, 0.9, 0.1, 0.7];
        for (a, b) in model
            .scores(&x)
            .unwrap()
            .iter()
            .zip(&same.scores(&x).unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn conductance_factors_generalize_aged() {
        let pair = programmed_pair(4, 2, 0.0, 3);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(4),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        // Factors above 1 are rejected by `aged` but fine here — a hot
        // chip conducts more, it does not "un-decay".
        let hot = Matrix::from_fn(4, 2, |_, _| 1.02);
        let ones = Matrix::from_fn(4, 2, |_, _| 1.0);
        assert!(model.aged(&hot, &ones).is_err());
        let warmed = model.with_conductance_factors(&hot, &ones).unwrap();
        let x = [0.3, 0.9, 0.1, 0.7];
        let (base, warm) = (model.scores(&x).unwrap(), warmed.scores(&x).unwrap());
        assert!(warm[0] > base[0], "positive crossbar must conduct more");
        // Shape and domain are still validated.
        let wrong_shape = Matrix::from_fn(3, 2, |_, _| 1.0);
        assert!(model.with_conductance_factors(&wrong_shape, &ones).is_err());
        let zero = Matrix::from_fn(4, 2, |_, _| 0.0);
        assert!(model.with_conductance_factors(&zero, &ones).is_err());
        let nan = Matrix::from_fn(4, 2, |_, _| f64::NAN);
        assert!(model.with_conductance_factors(&ones, &nan).is_err());
    }

    #[test]
    fn age_with_process_is_the_age_with_path() {
        let pair = programmed_pair(4, 2, 0.0, 3);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(4),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
        let a = model.age_with(&retention, 1e6, 99).unwrap();
        let b = model
            .age_with_process(&DriftProcess::new(retention, 99), 1e6)
            .unwrap();
        for (x, y) in a.g_pos.as_slice().iter().zip(b.g_pos.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.g_neg.as_slice().iter().zip(b.g_neg.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn cell_faults_pin_devices_and_validate() {
        let pair = programmed_pair(4, 2, 0.0, 17);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(4),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let faulted = model
            .with_cell_faults(&[CellFault {
                row: 1,
                col: 0,
                negative: false,
                conductance: 0.0,
            }])
            .unwrap();
        assert_eq!(faulted.g_pos[(1, 0)], 0.0);
        assert_eq!(faulted.g_neg[(1, 0)], model.g_neg[(1, 0)]);
        assert!(model
            .with_cell_faults(&[CellFault {
                row: 9,
                col: 0,
                negative: false,
                conductance: 0.0
            }])
            .is_err());
        assert!(model
            .with_cell_faults(&[CellFault {
                row: 0,
                col: 0,
                negative: true,
                conductance: -1.0
            }])
            .is_err());
    }

    #[test]
    fn canary_requires_consistent_probes() {
        let pair = programmed_pair(4, 2, 0.0, 23);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(4),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        assert!(model.canary().is_none());
        assert!(model.canary_accuracy().is_err());
        assert!(model.clone().with_canary_inputs(vec![]).is_err());
        assert!(model
            .clone()
            .with_canary_inputs(vec![vec![0.5; 3]])
            .is_err());
        assert!(CanarySet::new(vec![vec![0.5; 4]], vec![0, 1]).is_err());
        assert!(CanarySet::new(vec![vec![f64::NAN; 4]], vec![0]).is_err());
    }

    #[test]
    fn realized_weights_round_trip() {
        let pair = programmed_pair(5, 3, 0.0, 77);
        let model = CompiledModel::compile(
            &pair.freeze(),
            &identity(5),
            &ReadOptions::new(Fidelity::Ideal),
            None,
        )
        .unwrap();
        let a = pair.realized_weights();
        let b = model.realized_weights();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
