//! Read kernels: the bit-exact f64 reference and the certified f32 fast
//! path.
//!
//! Every compiled-model read ultimately reduces to `y = Mᵀx` against the
//! effective conductance matrices. Two kernels implement it:
//!
//! * [`gemv_ref`] — the f64 **reference**: identical values and identical
//!   floating-point operation order to [`vortex_linalg::Matrix::vecmat`]
//!   (zero-skip + row-major axpy accumulation), which is what keeps a
//!   compiled model bit-exact with the live crossbar read. Every public
//!   `scores()` value comes from this kernel; it is the semantics of the
//!   model.
//! * [`gemv_f32`] — the **fast path**: the differential read collapsed
//!   into one pre-combined single-precision matrix
//!   `D = (G⁺∘A⁺ − G⁻∘A⁻)/s`, walked with column tiling and 4-row
//!   unrolling so LLVM autovectorizes the inner loop. Half the memory
//!   traffic of the two-matrix f64 walk per crossbar (4 bytes vs 8 per
//!   coefficient, one matrix vs two), which is what the batched read is
//!   bound by.
//!
//! # The tolerance contract
//!
//! The fast path is only allowed to answer **labels**, and only when the
//! answer provably equals the reference's. [`FastGemv`] carries a
//! per-column error radius bounding every source of disagreement between
//! the f32 computation and the f64 reference:
//!
//! * rounding `D` and `x` to f32 (relative error ≤ 2⁻²⁴ each),
//! * the f32 dot-product accumulation (`n` roundings at 2⁻²⁴, any
//!   association order — so unrolling is covered),
//! * the f64 reference's own accumulation error against the real-valued
//!   product (at 2⁻⁵³, including the cancellation headroom of computing
//!   `(i⁺ − i⁻)/s` from the two positive current vectors rather than from
//!   `D` directly — bounded via the *sum* of conductance magnitudes).
//!
//! With `γ₃₂ = 4(n+4)·2⁻²⁴` and `γ₆₄ = 4(n+4)·2⁻⁵³` the radius of column
//! `j` for input `x` is `e_j = ‖x‖₁·(γ₃₂·maxᵢ|Dᵢⱼ| + γ₆₄·maxᵢ(|G⁺ᵢⱼ|+|G⁻ᵢⱼ|)/s)`
//! — the leading constant is ~4× the textbook `γₙ` bound, pure safety
//! margin. [`FastGemv::certified_label`] accepts its argmax only when the
//! f32 winner beats every other column by **more than** the two columns'
//! radii combined; ties, near-ties, NaNs and non-finite inputs all fail
//! the strict inequality and fall back to the reference. The fast path
//! therefore never changes a prediction — only the time it takes.
//! `crates/runtime/tests/kernel_equivalence.rs` property-tests both the
//! analytic bound and the label agreement.

use vortex_linalg::{vector, Matrix};

/// Unit roundoff of `f32` (2⁻²⁴).
pub const F32_EPS: f64 = 5.960_464_477_539_063e-8;

/// Unit roundoff of `f64` (2⁻⁵³).
pub const F64_EPS: f64 = 1.110_223_024_625_156_5e-16;

/// Columns per tile of the f32 kernel: 256 columns × 5 rows of f32
/// live-data fits comfortably in L1 alongside the accumulator.
const COL_TILE: usize = 256;

/// `y = mᵀx` in f64, replicating [`Matrix::vecmat`] exactly (same
/// zero-skip, same accumulation order) without the output allocation.
/// This is the reference kernel every score passes through.
pub fn gemv_ref(m: &Matrix, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), m.rows());
    debug_assert_eq!(y.len(), m.cols());
    y.fill(0.0);
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        vector::axpy(xi, m.row(i), y);
    }
}

/// `y = dᵀx` in f32 over the row-major `rows × cols` matrix `d`, column
/// tiled and 4-row unrolled. Deterministic: a fixed association order,
/// independent of thread count or call site.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `rows`/`cols`.
pub fn gemv_f32(d: &[f32], rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(d.len(), rows * cols, "matrix buffer must be rows*cols");
    assert_eq!(x.len(), rows, "input length must equal rows");
    assert_eq!(y.len(), cols, "output length must equal cols");
    y.fill(0.0);
    let mut c0 = 0;
    while c0 < cols {
        let c1 = (c0 + COL_TILE).min(cols);
        let acc = &mut y[c0..c1];
        let mut i = 0;
        // 4-row unroll: one pass over the accumulator per 4 input rows,
        // with equal-length slices so the inner loop autovectorizes.
        while i + 4 <= rows {
            let (x0, x1, x2, x3) = (x[i], x[i + 1], x[i + 2], x[i + 3]);
            let r0 = &d[i * cols + c0..i * cols + c1];
            let r1 = &d[(i + 1) * cols + c0..(i + 1) * cols + c1];
            let r2 = &d[(i + 2) * cols + c0..(i + 2) * cols + c1];
            let r3 = &d[(i + 3) * cols + c0..(i + 3) * cols + c1];
            for (j, out) in acc.iter_mut().enumerate() {
                *out += x0 * r0[j] + x1 * r1[j] + x2 * r2[j] + x3 * r3[j];
            }
            i += 4;
        }
        while i < rows {
            let xi = x[i];
            let row = &d[i * cols + c0..i * cols + c1];
            for (out, &dij) in acc.iter_mut().zip(row) {
                *out += xi * dij;
            }
            i += 1;
        }
        c0 = c1;
    }
}

/// The pre-combined f32 read matrix plus its per-column error radii. See
/// the module docs for the tolerance contract.
#[derive(Debug, Clone)]
pub struct FastGemv {
    /// `(eff_pos − eff_neg)/scale`, combined in f64 and rounded to f32,
    /// row-major.
    d: Vec<f32>,
    /// Per-column radius coefficient: multiply by `‖x‖₁` for the error
    /// bound of that column's f32 score against the f64 reference.
    radius: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FastGemv {
    /// Builds the combined matrix and radii from the effective
    /// conductance pair of a compiled model.
    pub fn from_effective(eff_pos: &Matrix, eff_neg: &Matrix, scale: f64) -> Self {
        let (rows, cols) = eff_pos.shape();
        debug_assert_eq!(eff_neg.shape(), (rows, cols));
        let mut d = vec![0f32; rows * cols];
        let mut colmax_d = vec![0f64; cols];
        let mut colmax_sum = vec![0f64; cols];
        for i in 0..rows {
            let p = eff_pos.row(i);
            let n = eff_neg.row(i);
            for j in 0..cols {
                let dij = (p[j] - n[j]) / scale;
                d[i * cols + j] = dij as f32;
                colmax_d[j] = colmax_d[j].max(dij.abs());
                colmax_sum[j] = colmax_sum[j].max((p[j].abs() + n[j].abs()) / scale);
            }
        }
        let gamma32 = 4.0 * (rows as f64 + 4.0) * F32_EPS;
        let gamma64 = 4.0 * (rows as f64 + 4.0) * F64_EPS;
        let radius = (0..cols)
            .map(|j| gamma32 * colmax_d[j] + gamma64 * colmax_sum[j])
            .collect();
        Self {
            d,
            radius,
            rows,
            cols,
        }
    }

    /// Physical rows of the combined matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Classes (columns) of the combined matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The combined f32 matrix, row-major (for benches and tests).
    pub fn matrix(&self) -> &[f32] {
        &self.d
    }

    /// Error-bound coefficient of column `j` (multiply by `‖x‖₁`).
    pub fn radius(&self, j: usize) -> f64 {
        self.radius[j]
    }

    /// Raw f32 scores into `s32` (uncertified — tests and benches only;
    /// the model uses [`Self::certified_label`]).
    pub fn scores_into(&self, x32: &[f32], s32: &mut [f32]) {
        gemv_f32(&self.d, self.rows, self.cols, x32, s32);
    }

    /// The argmax label of the routed (post-DAC) input `x`, **iff** it
    /// provably equals the f64 reference's argmax; `None` means the
    /// margin is inside the error radius and the caller must take the
    /// reference path. `x32`/`s32` are caller scratch of length
    /// `rows`/`cols`.
    pub fn certified_label(&self, x: &[f64], x32: &mut [f32], s32: &mut [f32]) -> Option<usize> {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(x32.len(), self.rows);
        debug_assert_eq!(s32.len(), self.cols);
        let mut norm1 = 0.0f64;
        for (dst, &v) in x32.iter_mut().zip(x) {
            norm1 += v.abs();
            *dst = v as f32;
        }
        if !norm1.is_finite() {
            return None;
        }
        gemv_f32(&self.d, self.rows, self.cols, x32, s32);
        // Candidate winner: lowest index on exact ties, NaN never wins a
        // strict comparison — both matching `vector::argmax`'s rules, and
        // irrelevant anyway: any tie or NaN fails certification below.
        let mut top = 0usize;
        for j in 1..self.cols {
            if s32[j] > s32[top] {
                top = j;
            }
        }
        let e_top = norm1 * self.radius[top];
        for j in 0..self.cols {
            if j == top {
                continue;
            }
            let gap = f64::from(s32[top]) - f64::from(s32[j]);
            // Strict negated comparison on purpose: a NaN gap must fall
            // back, and `!(a > b)` is the only form that treats NaN as
            // "not certified" rather than "certified".
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(gap > e_top + norm1 * self.radius[j]) {
                return None;
            }
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        Matrix::from_fn(rows, cols, f)
    }

    #[test]
    fn gemv_f32_matches_naive_product() {
        for (rows, cols) in [(1, 1), (3, 5), (4, 4), (17, 3), (300, 10)] {
            let d: Vec<f32> = (0..rows * cols)
                .map(|k| ((k as f32) * 0.37).sin())
                .collect();
            let x: Vec<f32> = (0..rows).map(|i| ((i as f32) * 0.7).cos()).collect();
            let mut y = vec![0f32; cols];
            gemv_f32(&d, rows, cols, &x, &mut y);
            for j in 0..cols {
                let want: f64 = (0..rows)
                    .map(|i| f64::from(x[i]) * f64::from(d[i * cols + j]))
                    .sum();
                assert!(
                    (f64::from(y[j]) - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "({rows}x{cols}) col {j}: {} vs {want}",
                    y[j]
                );
            }
        }
    }

    #[test]
    fn gemv_ref_matches_matrix_vecmat_bit_for_bit() {
        let m = dense(9, 4, |i, j| ((i * 4 + j) as f64 * 0.41).sin());
        let x: Vec<f64> = (0..9).map(|i| ((i as f64) * 0.3).cos()).collect();
        let want = m.vecmat(&x);
        let mut got = vec![0.0; 4];
        gemv_ref(&m, &x, &mut got);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn certified_label_agrees_with_reference_when_some() {
        let rows = 40;
        let cols = 6;
        let scale = 2.5e-4;
        let pos = dense(rows, cols, |i, j| {
            scale * (1.0 + ((i * cols + j) as f64 * 0.13).sin()).abs()
        });
        let neg = dense(rows, cols, |i, j| {
            scale * (1.0 + ((i * cols + j) as f64 * 0.29).cos()).abs()
        });
        let fast = FastGemv::from_effective(&pos, &neg, scale);
        let mut x32 = vec![0f32; rows];
        let mut s32 = vec![0f32; cols];
        let mut certified = 0;
        for k in 0..200 {
            let x: Vec<f64> = (0..rows)
                .map(|i| ((i + k * rows) as f64 * 0.17).sin().abs())
                .collect();
            // f64 reference: (pos - neg)/scale per column, axpy order.
            let mut ip = vec![0.0; cols];
            let mut in_ = vec![0.0; cols];
            gemv_ref(&pos, &x, &mut ip);
            gemv_ref(&neg, &x, &mut in_);
            let scores: Vec<f64> = ip.iter().zip(&in_).map(|(p, n)| (p - n) / scale).collect();
            let want = vector::argmax(&scores).unwrap();
            if let Some(got) = fast.certified_label(&x, &mut x32, &mut s32) {
                certified += 1;
                assert_eq!(got, want, "certified label diverged at sample {k}");
            }
        }
        assert!(
            certified >= 190,
            "fast path certified only {certified}/200 well-separated samples"
        );
    }

    #[test]
    fn non_finite_input_is_never_certified() {
        let pos = dense(4, 2, |_, _| 1e-4);
        let neg = dense(4, 2, |i, j| 1e-4 * ((i + j) as f64 * 0.1 + 0.5));
        let fast = FastGemv::from_effective(&pos, &neg, 1e-4);
        let mut x32 = vec![0f32; 4];
        let mut s32 = vec![0f32; 2];
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let x = vec![0.5, bad, 0.5, 0.5];
            assert_eq!(fast.certified_label(&x, &mut x32, &mut s32), None);
        }
    }

    #[test]
    fn single_class_is_always_certified_to_zero() {
        let pos = dense(6, 1, |i, _| 1e-4 * (i as f64 + 1.0));
        let neg = dense(6, 1, |i, _| 0.5e-4 * (i as f64 + 1.0));
        let fast = FastGemv::from_effective(&pos, &neg, 1e-4);
        let mut x32 = vec![0f32; 6];
        let mut s32 = vec![0f32; 1];
        assert_eq!(fast.certified_label(&[0.1; 6], &mut x32, &mut s32), Some(0));
    }

    #[test]
    fn exact_tie_falls_back() {
        // Two identical columns: the gap is exactly zero, which can never
        // clear a positive radius.
        let pos = dense(3, 2, |i, _| 1e-4 * (i as f64 + 1.0));
        let neg = dense(3, 2, |_, _| 0.4e-4);
        let fast = FastGemv::from_effective(&pos, &neg, 1e-4);
        let mut x32 = vec![0f32; 3];
        let mut s32 = vec![0f32; 2];
        assert_eq!(fast.certified_label(&[1.0; 3], &mut x32, &mut s32), None);
    }
}
