//! **vortex-runtime** — compiled-model inference for programmed crossbars.
//!
//! The training side of the workspace (vortex-core) spends its time in a
//! fabricate → map → program → calibrate loop; the *product* of that loop
//! is a programmed differential pair whose read path never changes again.
//! This crate is the serving side of that split:
//!
//! * [`CompiledModel`] freezes a programmed pair's read path — conductance
//!   state, differential-pair scale, calibrated IR-drop attenuation, row
//!   routing and converter resolutions — into an immutable object whose
//!   [`CompiledModel::infer`] is a pure, allocation-light batched read.
//! * [`CompiledModel::infer_batch`] fans a batch out over the
//!   deterministic executor of `vortex_nn::executor`; predictions are
//!   bit-identical for every [`Parallelism`](vortex_nn::executor::Parallelism)
//!   setting.
//! * [`artifact`] gives the model a versioned on-disk format (magic,
//!   format version, length-prefixed sections, CRC-32) with typed errors
//!   on version or checksum mismatch — self-contained, no external serde.
//!
//! The frozen read is bit-exact with the live read of
//! [`vortex_xbar::pair::DifferentialPair::read`]: the ideal path computes
//! the very same `gᵀx` products, and the calibrated path folds the
//! attenuation into an effective conductance matrix exactly as
//! [`vortex_xbar::irdrop::ComputeAttenuationMap::compute`] does per
//! sample — the values, and the floating-point operation order, are
//! unchanged.

#![warn(missing_docs)]

pub mod artifact;
pub mod checkpoint;
pub mod kernels;
pub mod model;

pub use artifact::ArtifactError;
pub use checkpoint::TrainingCheckpoint;
pub use model::{CanarySet, CellFault, CompiledModel, Fidelity, ReadOptions};

/// Canonical imports for the serving side:
/// `use vortex_runtime::prelude::*;`.
pub mod prelude {
    pub use crate::{
        ArtifactError, CanarySet, CellFault, CompiledModel, Fidelity, ReadOptions, RuntimeError,
        TrainingCheckpoint,
    };
    pub use vortex_nn::executor::Parallelism;
    pub use vortex_xbar::encoding::{EncodingScheme, EncodingSpec, EncodingTable, WeightEncoding};
}

/// Errors produced by the inference runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// An underlying crossbar operation (calibration, nodal solve) failed.
    Xbar(vortex_xbar::XbarError),
    /// An artifact encode/decode operation failed.
    Artifact(ArtifactError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
            RuntimeError::Xbar(e) => write!(f, "crossbar error: {e}"),
            RuntimeError::Artifact(e) => write!(f, "artifact error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Xbar(e) => Some(e),
            RuntimeError::Artifact(e) => Some(e),
            RuntimeError::InvalidParameter { .. } => None,
        }
    }
}

impl From<vortex_xbar::XbarError> for RuntimeError {
    fn from(e: vortex_xbar::XbarError) -> Self {
        RuntimeError::Xbar(e)
    }
}

impl From<ArtifactError> for RuntimeError {
    fn from(e: ArtifactError) -> Self {
        RuntimeError::Artifact(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = RuntimeError::InvalidParameter {
            name: "x",
            requirement: "y",
        };
        assert!(e.to_string().contains("invalid parameter"));
        let e: RuntimeError = ArtifactError::BadMagic.into();
        assert!(e.to_string().contains("artifact"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
