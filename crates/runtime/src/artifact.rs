//! Versioned on-disk artifact format for [`CompiledModel`].
//!
//! The build environment has no registry access, so the codec is fully
//! self-contained. The layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            8 bytes   b"VXRTMODL"
//!            version          u32       currently 2
//!            section count    u32
//!            sections         repeated  tag [u8;4] · payload len u64 · payload
//! trailer    checksum         u32       CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Sections, in write order:
//!
//! | tag    | since | payload                                                |
//! |--------|-------|--------------------------------------------------------|
//! | `META` | v1    | fidelity u8 · flags u8 · r_wire f64 · scale f64 · adc bits u32 · adc full-scale f64 · dac bits u32 · dac v_ref f64 |
//! | `ROUT` | v1    | physical rows u64 · logical rows u64 · assignment u64 × n |
//! | `GPOS` | v1    | rows u64 · cols u64 · conductances f64 × rows·cols     |
//! | `GNEG` | v1    | likewise for the negative crossbar                     |
//! | `APOS` | v1    | attenuation matrix, only for calibrated models         |
//! | `ANEG` | v1    | likewise for the negative crossbar                     |
//! | `CNRY` | v2    | probe count u64 · input len u64 · inputs f64 × count·len · golden u8 × count |
//! | `ENCT` | v3    | scheme u8 · row count u64 · levels u16 × rows          |
//! | `TRNC` | v4    | training checkpoint (see [`crate::checkpoint`]); never written into model artifacts |
//!
//! `flags` bit 0 marks an ADC present, bit 1 a DAC. All floats are
//! serialized via [`f64::to_le_bytes`], so a round-trip is bit-exact and
//! a loaded model infers identically to the in-memory one. Unknown
//! section tags are skipped (minor extensions don't need a version bump);
//! a major layout change must bump `FORMAT_VERSION`. Version 2 only
//! *added* the optional `CNRY` canary section, version 3 only adds the
//! `ENCT` per-row encoding table, and version 4 only adds the `TRNC`
//! training-checkpoint section (carried by standalone checkpoint files,
//! not by model artifacts), so this build still reads every version from
//! [`MIN_FORMAT_VERSION`] up — a v1 artifact simply loads as a model
//! without a canary, and any pre-v3 artifact loads with the all-continuous
//! differential encoding table (which is exactly how it was programmed).
//! Decoding verifies the checksum before touching any section, and every
//! failure mode is a distinct [`ArtifactError`] variant.
//!
//! Every on-disk write goes through [`atomic_write`] — temp file, fsync,
//! atomic rename — so a crash mid-save can never leave a torn file where
//! a good one used to be.

use std::io::Read as _;
use std::io::Write as _;
use std::path::Path;

use vortex_linalg::Matrix;
use vortex_xbar::encoding::{EncodingScheme, EncodingTable};
use vortex_xbar::sensing::{Adc, Dac};

use crate::model::{CanarySet, CompiledModel, Fidelity};
use crate::{Result, RuntimeError};

/// Leading magic bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"VXRTMODL";

/// The format version this build writes.
pub const FORMAT_VERSION: u32 = 4;

/// The oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

pub(crate) const TAG_TRNC: [u8; 4] = *b"TRNC";

const TAG_META: [u8; 4] = *b"META";
const TAG_ROUT: [u8; 4] = *b"ROUT";
const TAG_GPOS: [u8; 4] = *b"GPOS";
const TAG_GNEG: [u8; 4] = *b"GNEG";
const TAG_APOS: [u8; 4] = *b"APOS";
const TAG_ANEG: [u8; 4] = *b"ANEG";
const TAG_CNRY: [u8; 4] = *b"CNRY";
const TAG_ENCT: [u8; 4] = *b"ENCT";

const FLAG_ADC: u8 = 1 << 0;
const FLAG_DAC: u8 = 1 << 1;

/// Errors of the artifact codec. Every failure mode is distinguishable,
/// so callers can tell a stale format from a corrupt file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The underlying file operation failed.
    Io {
        /// Kind of the I/O failure.
        kind: std::io::ErrorKind,
        /// Human-readable message of the original error.
        message: String,
    },
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The trailing CRC-32 does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// The file ends before the structure it announces.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section payload is structurally invalid.
    Malformed {
        /// What was found to be inconsistent.
        context: &'static str,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { kind, message } => write!(f, "i/o error ({kind:?}): {message}"),
            ArtifactError::BadMagic => write!(f, "not a vortex-runtime artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact version {found} (this build reads versions \
                 {MIN_FORMAT_VERSION} through {supported})"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ArtifactError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            ArtifactError::Malformed { context } => write!(f, "artifact malformed: {context}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// Writes `bytes` to `path` atomically: the bytes land in a sibling temp
/// file first, are fsynced, and only then renamed over the target.
///
/// A crash — or a panic, or a pulled plug — at any point of the sequence
/// leaves either the complete previous file or the complete new file at
/// `path`, never a torn mixture. Every artifact and checkpoint save in the
/// workspace routes through this helper. The temp file carries a
/// `.tmp-vxrt` suffix next to the target so the rename stays on one
/// filesystem; it is removed on failure.
///
/// # Errors
///
/// Propagates the underlying I/O failure (create, write, fsync or rename).
pub fn atomic_write<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp-vxrt");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write().inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

pub(crate) fn put_matrix(payload: &mut Vec<u8>, m: &Matrix) {
    payload.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    payload.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &v in m.as_slice() {
        payload.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn put_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes a model into the current artifact byte layout.
pub(crate) fn encode(model: &CompiledModel) -> Vec<u8> {
    let mut meta = Vec::with_capacity(64);
    meta.push(model.fidelity.code());
    let mut flags = 0u8;
    if model.adc.is_some() {
        flags |= FLAG_ADC;
    }
    if model.dac.is_some() {
        flags |= FLAG_DAC;
    }
    meta.push(flags);
    meta.extend_from_slice(&model.r_wire.to_le_bytes());
    meta.extend_from_slice(&model.scale.to_le_bytes());
    let (adc_bits, adc_fs) = model.adc.map_or((0, 0.0), |a| (a.bits(), a.full_scale()));
    meta.extend_from_slice(&adc_bits.to_le_bytes());
    meta.extend_from_slice(&adc_fs.to_le_bytes());
    let (dac_bits, dac_vref) = model.dac.map_or((0, 0.0), |d| (d.bits(), d.v_ref()));
    meta.extend_from_slice(&dac_bits.to_le_bytes());
    meta.extend_from_slice(&dac_vref.to_le_bytes());

    let mut rout = Vec::with_capacity(16 + 8 * model.assignment.len());
    rout.extend_from_slice(&(model.physical_rows as u64).to_le_bytes());
    rout.extend_from_slice(&(model.assignment.len() as u64).to_le_bytes());
    for &q in &model.assignment {
        rout.extend_from_slice(&(q as u64).to_le_bytes());
    }

    let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![(TAG_META, meta), (TAG_ROUT, rout)];
    for (tag, m) in [(TAG_GPOS, &model.g_pos), (TAG_GNEG, &model.g_neg)] {
        let mut payload = Vec::with_capacity(16 + 8 * m.rows() * m.cols());
        put_matrix(&mut payload, m);
        sections.push((tag, payload));
    }
    for (tag, m) in [(TAG_APOS, &model.att_pos), (TAG_ANEG, &model.att_neg)] {
        if let Some(m) = m {
            let mut payload = Vec::with_capacity(16 + 8 * m.rows() * m.cols());
            put_matrix(&mut payload, m);
            sections.push((tag, payload));
        }
    }
    if let Some(canary) = &model.canary {
        let count = canary.len();
        let width = canary.inputs()[0].len();
        let mut payload = Vec::with_capacity(16 + 8 * count * width + count);
        payload.extend_from_slice(&(count as u64).to_le_bytes());
        payload.extend_from_slice(&(width as u64).to_le_bytes());
        for x in canary.inputs() {
            for &v in x {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        payload.extend_from_slice(canary.golden());
        sections.push((TAG_CNRY, payload));
    }
    {
        let levels = model.encoding.levels();
        let mut payload = Vec::with_capacity(9 + 2 * levels.len());
        payload.push(model.encoding.scheme().code());
        payload.extend_from_slice(&(levels.len() as u64).to_le_bytes());
        for &l in levels {
            payload.extend_from_slice(&l.to_le_bytes());
        }
        sections.push((TAG_ENCT, payload));
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in &sections {
        put_section(&mut out, *tag, payload);
    }
    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian byte cursor.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> std::result::Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ArtifactError::Truncated { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> std::result::Result<u8, ArtifactError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> std::result::Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> std::result::Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> std::result::Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn u64_usize(
        &mut self,
        context: &'static str,
    ) -> std::result::Result<usize, ArtifactError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| ArtifactError::Malformed { context })
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> std::result::Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

pub(crate) fn get_matrix(
    c: &mut Cursor<'_>,
    context: &'static str,
) -> std::result::Result<Matrix, ArtifactError> {
    let rows = c.u64_usize(context)?;
    let cols = c.u64_usize(context)?;
    let count = rows
        .checked_mul(cols)
        .ok_or(ArtifactError::Malformed { context })?;
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(c.f64(context)?);
    }
    if !c.is_empty() {
        return Err(ArtifactError::Malformed { context });
    }
    Matrix::from_vec(rows, cols, data).map_err(|_| ArtifactError::Malformed { context })
}

struct Decoded {
    fidelity: Fidelity,
    r_wire: f64,
    scale: f64,
    adc: Option<Adc>,
    dac: Option<Dac>,
    physical_rows: usize,
    assignment: Vec<usize>,
    g_pos: Matrix,
    g_neg: Matrix,
    att_pos: Option<Matrix>,
    att_neg: Option<Matrix>,
    canary: Option<CanarySet>,
    encoding: Option<EncodingTable>,
}

struct Meta {
    fidelity: Fidelity,
    r_wire: f64,
    scale: f64,
    adc: Option<Adc>,
    dac: Option<Dac>,
}

fn decode_meta(payload: &[u8]) -> std::result::Result<Meta, ArtifactError> {
    let mut c = Cursor::new(payload);
    let fidelity = Fidelity::from_code(c.u8("META fidelity")?).ok_or(ArtifactError::Malformed {
        context: "META fidelity code",
    })?;
    let flags = c.u8("META flags")?;
    let r_wire = c.f64("META r_wire")?;
    let scale = c.f64("META scale")?;
    let adc_bits = c.u32("META adc")?;
    let adc_fs = c.f64("META adc")?;
    let dac_bits = c.u32("META dac")?;
    let dac_vref = c.f64("META dac")?;
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "META trailing bytes",
        });
    }
    let adc = if flags & FLAG_ADC != 0 {
        Some(
            Adc::new(adc_bits, adc_fs).map_err(|_| ArtifactError::Malformed {
                context: "META adc parameters",
            })?,
        )
    } else {
        None
    };
    let dac = if flags & FLAG_DAC != 0 {
        Some(
            Dac::new(dac_bits, dac_vref).map_err(|_| ArtifactError::Malformed {
                context: "META dac parameters",
            })?,
        )
    } else {
        None
    };
    Ok(Meta {
        fidelity,
        r_wire,
        scale,
        adc,
        dac,
    })
}

fn decode_cnry(payload: &[u8]) -> std::result::Result<CanarySet, ArtifactError> {
    let mut c = Cursor::new(payload);
    let count = c.u64_usize("CNRY probe count")?;
    let width = c.u64_usize("CNRY input length")?;
    // Size the announced contents against the payload *before* any
    // allocation, so absurd counts fail typed instead of aborting.
    let announced = count
        .checked_mul(width)
        .and_then(|n| n.checked_mul(8))
        .and_then(|n| n.checked_add(count))
        .ok_or(ArtifactError::Malformed {
            context: "CNRY announced size",
        })?;
    if announced != payload.len() - 16 {
        return Err(ArtifactError::Malformed {
            context: "CNRY announced size",
        });
    }
    let mut inputs = Vec::with_capacity(count);
    for _ in 0..count {
        let mut x = Vec::with_capacity(width);
        for _ in 0..width {
            x.push(c.f64("CNRY inputs")?);
        }
        inputs.push(x);
    }
    let golden = c.take(count, "CNRY golden predictions")?.to_vec();
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "CNRY trailing bytes",
        });
    }
    CanarySet::new(inputs, golden).map_err(|_| ArtifactError::Malformed {
        context: "CNRY probe set",
    })
}

fn decode_enct(payload: &[u8]) -> std::result::Result<EncodingTable, ArtifactError> {
    let mut c = Cursor::new(payload);
    let scheme =
        EncodingScheme::from_code(c.u8("ENCT scheme")?).ok_or(ArtifactError::Malformed {
            context: "ENCT scheme code",
        })?;
    let rows = c.u64_usize("ENCT row count")?;
    // Size the announced contents against the payload *before* any
    // allocation, as the canary decoder does.
    let announced = rows.checked_mul(2).ok_or(ArtifactError::Malformed {
        context: "ENCT announced size",
    })?;
    if announced != payload.len() - 9 {
        return Err(ArtifactError::Malformed {
            context: "ENCT announced size",
        });
    }
    let mut levels = Vec::with_capacity(rows);
    for _ in 0..rows {
        levels.push(c.u16("ENCT levels")?);
    }
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "ENCT trailing bytes",
        });
    }
    EncodingTable::new(scheme, levels).map_err(|_| ArtifactError::Malformed {
        context: "ENCT level table",
    })
}

fn decode_rout(payload: &[u8]) -> std::result::Result<(usize, Vec<usize>), ArtifactError> {
    let mut c = Cursor::new(payload);
    let physical_rows = c.u64_usize("ROUT physical rows")?;
    let logical_rows = c.u64_usize("ROUT logical rows")?;
    let mut assignment = Vec::with_capacity(logical_rows);
    for _ in 0..logical_rows {
        assignment.push(c.u64_usize("ROUT assignment")?);
    }
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "ROUT trailing bytes",
        });
    }
    Ok((physical_rows, assignment))
}

/// Parses the artifact byte layout into model parts, verifying magic,
/// version and checksum first.
fn decode(bytes: &[u8]) -> std::result::Result<Decoded, ArtifactError> {
    if bytes.len() < MAGIC.len() {
        return Err(ArtifactError::Truncated { context: "magic" });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let mut c = Cursor::new(&bytes[MAGIC.len()..]);
    let version = c.u32("version")?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    // Checksum is verified before any section is trusted.
    if bytes.len() < MAGIC.len() + 8 + 4 {
        return Err(ArtifactError::Truncated {
            context: "checksum",
        });
    }
    let body_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..body_len]);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }

    let mut c = Cursor::new(&bytes[MAGIC.len() + 4..body_len]);
    let section_count = c.u32("section count")?;
    let mut meta = None;
    let mut rout = None;
    let mut g_pos = None;
    let mut g_neg = None;
    let mut att_pos = None;
    let mut att_neg = None;
    let mut canary = None;
    let mut encoding = None;
    for _ in 0..section_count {
        let tag: [u8; 4] = c.take(4, "section tag")?.try_into().expect("4 bytes");
        let len = c.u64_usize("section length")?;
        let payload = c.take(len, "section payload")?;
        match tag {
            TAG_META => meta = Some(decode_meta(payload)?),
            TAG_ROUT => rout = Some(decode_rout(payload)?),
            TAG_GPOS => g_pos = Some(get_matrix(&mut Cursor::new(payload), "GPOS matrix")?),
            TAG_GNEG => g_neg = Some(get_matrix(&mut Cursor::new(payload), "GNEG matrix")?),
            TAG_APOS => att_pos = Some(get_matrix(&mut Cursor::new(payload), "APOS matrix")?),
            TAG_ANEG => att_neg = Some(get_matrix(&mut Cursor::new(payload), "ANEG matrix")?),
            TAG_CNRY => canary = Some(decode_cnry(payload)?),
            TAG_ENCT => encoding = Some(decode_enct(payload)?),
            // Unknown tags are future minor extensions: skipped.
            _ => {}
        }
    }
    if !c.is_empty() {
        return Err(ArtifactError::Malformed {
            context: "bytes after last section",
        });
    }
    let Meta {
        fidelity,
        r_wire,
        scale,
        adc,
        dac,
    } = meta.ok_or(ArtifactError::Malformed {
        context: "missing META section",
    })?;
    let (physical_rows, assignment) = rout.ok_or(ArtifactError::Malformed {
        context: "missing ROUT section",
    })?;
    Ok(Decoded {
        fidelity,
        r_wire,
        scale,
        adc,
        dac,
        physical_rows,
        assignment,
        g_pos: g_pos.ok_or(ArtifactError::Malformed {
            context: "missing GPOS section",
        })?,
        g_neg: g_neg.ok_or(ArtifactError::Malformed {
            context: "missing GNEG section",
        })?,
        att_pos,
        att_neg,
        canary,
        encoding,
    })
}

impl CompiledModel {
    /// Serializes the model to the versioned artifact byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self)
    }

    /// Deserializes a model from artifact bytes, rebuilding the derived
    /// read state.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] for a bad magic, an unsupported
    /// version, a checksum mismatch, or truncated/malformed contents; a
    /// structurally valid artifact with inconsistent model state yields
    /// [`RuntimeError::InvalidParameter`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let d = decode(bytes).map_err(RuntimeError::Artifact)?;
        // Pre-v3 artifacts carry no table; they were programmed with the
        // continuous differential encoding by definition.
        let encoding = d
            .encoding
            .unwrap_or_else(|| EncodingTable::differential(d.physical_rows));
        Self::from_parts(
            d.fidelity,
            d.r_wire,
            d.scale,
            d.adc,
            d.dac,
            d.physical_rows,
            d.assignment,
            d.g_pos,
            d.g_neg,
            d.att_pos,
            d.att_neg,
            d.canary,
            encoding,
        )
    }

    /// Writes the artifact to `path` through [`atomic_write`], so a crash
    /// mid-save never leaves a torn artifact behind.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] wrapping the I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        atomic_write(path, &self.to_bytes())
            .map_err(|e| RuntimeError::Artifact(ArtifactError::from(e)))
    }

    /// Reads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// See [`Self::from_bytes`]; file-system failures surface as
    /// [`ArtifactError::Io`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path.as_ref())
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| RuntimeError::Artifact(ArtifactError::from(e)))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ArtifactError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = ArtifactError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }
}
