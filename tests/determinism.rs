//! The determinism contract, enforced end to end: every Monte-Carlo loop
//! in the workspace produces **bit-identical** results on any worker
//! count. See `vortex_nn::executor` for the mechanism (pre-split seed
//! streams, sharded execution, ordered reassembly).

use std::time::{Duration, Instant};

use vortex_bench::experiments::common::Scale;
use vortex_bench::experiments::fig2;
use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::{evaluate_hardware_with, HardwareEnv};
use vortex_core::vortex::{amp_evaluate_with, AmpChipOptions, VortexConfig, VortexPipeline};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::executor::{run_trials, Parallelism, THREADS_ENV_VAR};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::montecarlo;
use vortex_nn::split::stratified_split;

/// Thread counts every assertion sweeps, per the contract.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

fn dataset(seed: u64) -> (Dataset, Dataset) {
    let data = SynthDigits::generate(&DatasetConfig::tiny(), seed).expect("dataset");
    let split = stratified_split(&data, 200, 100, &mut rng(seed)).expect("split");
    (split.train, split.test)
}

// ---------------------------------------------------------------------------
// Executor-level properties.
// ---------------------------------------------------------------------------

#[test]
fn executor_is_bit_exact_across_thread_counts_and_odd_trial_counts() {
    let f = |k: usize, r: &mut Xoshiro256PlusPlus| (k as f64).mul_add(1e-9, r.next_f64());
    // Odd, even, tiny and prime trial counts all round-trip identically.
    for trials in [1usize, 2, 7, 37, 101] {
        let baseline = run_trials(&mut rng(42), trials, Parallelism::Serial, f);
        for threads in THREAD_COUNTS {
            let got = run_trials(&mut rng(42), trials, Parallelism::Fixed(threads), f);
            assert_eq!(baseline.len(), got.len());
            for (k, (a, b)) in baseline.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "trial {k}/{trials} diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn results_stay_in_trial_order_under_skewed_workloads() {
    // Early trials are given far more work than late ones, so on a real
    // pool the *completion* order inverts — the output order must not.
    let f = |k: usize, r: &mut Xoshiro256PlusPlus| {
        let spins = if k < 8 { 20_000 } else { 10 };
        let mut acc = 0u64;
        for _ in 0..spins {
            acc = acc.wrapping_add(r.next_u64());
        }
        (k, acc)
    };
    let out = run_trials(&mut rng(3), 33, Parallelism::Fixed(8), f);
    let indices: Vec<usize> = out.iter().map(|&(k, _)| k).collect();
    assert_eq!(indices, (0..33).collect::<Vec<_>>());
    // And the values still match the serial loop exactly.
    assert_eq!(out, run_trials(&mut rng(3), 33, Parallelism::Serial, f));
}

#[test]
fn trials_are_prefix_stable_and_independent() {
    // Child k is a pure function of (seed, k): adding more trials must not
    // change the earlier ones, and no two children may share a stream.
    let f = |_: usize, r: &mut Xoshiro256PlusPlus| r.next_u64();
    let short = run_trials(&mut rng(11), 13, Parallelism::Fixed(2), f);
    let long = run_trials(&mut rng(11), 41, Parallelism::Fixed(8), f);
    assert_eq!(short[..], long[..13], "prefix changed when trials grew");
    let mut uniq = long.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), long.len(), "child streams collided");
}

#[test]
fn parent_generator_continues_identically_after_fan_out() {
    let mut serial = rng(8);
    let _ = run_trials(&mut serial, 19, Parallelism::Serial, |_, r| r.next_f64());
    for threads in THREAD_COUNTS {
        let mut parallel = rng(8);
        let _ = run_trials(&mut parallel, 19, Parallelism::Fixed(threads), |_, r| {
            r.next_f64()
        });
        let mut s = serial.clone();
        assert_eq!(
            s.next_u64(),
            parallel.next_u64(),
            "parent stream diverged after {threads}-thread fan-out"
        );
    }
}

#[test]
fn env_var_controls_auto_resolution() {
    // Whatever Auto resolves to, results are bit-identical — this test
    // only checks the *pool size* plumbing. The value is harmless to any
    // concurrently-running test for exactly that reason.
    std::env::set_var(THREADS_ENV_VAR, "3");
    assert_eq!(Parallelism::Auto.resolve(), 3);
    std::env::set_var(THREADS_ENV_VAR, "not a number");
    assert!(Parallelism::Auto.resolve() >= 1);
    std::env::remove_var(THREADS_ENV_VAR);
    assert!(Parallelism::Auto.resolve() >= 1);
}

#[test]
fn montecarlo_run_with_matches_serial_run() {
    let f = |r: &mut Xoshiro256PlusPlus| r.next_f64();
    let serial = montecarlo::run(77, 51, f);
    for threads in THREAD_COUNTS {
        let par = montecarlo::run_with(77, 51, Parallelism::Fixed(threads), f);
        assert_eq!(serial, par, "montecarlo diverged at {threads} threads");
    }
}

// ---------------------------------------------------------------------------
// Experiment closures: three real pipelines, bit-exact across pools.
// ---------------------------------------------------------------------------

#[test]
fn hardware_evaluation_is_thread_invariant() {
    let (train, test) = dataset(21);
    let weights = GdtTrainer {
        epochs: 6,
        ..Default::default()
    }
    .train(&train)
    .expect("training");
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.6).expect("env");

    let mut serial_rng = rng(210);
    let serial = evaluate_hardware_with(
        &weights,
        &mapping,
        &env,
        &test,
        5,
        &mut serial_rng,
        Parallelism::Serial,
    )
    .expect("serial eval");
    for threads in THREAD_COUNTS {
        let mut par_rng = rng(210);
        let par = evaluate_hardware_with(
            &weights,
            &mapping,
            &env,
            &test,
            5,
            &mut par_rng,
            Parallelism::Fixed(threads),
        )
        .expect("parallel eval");
        assert_eq!(serial.per_draw, par.per_draw, "{threads} threads");
        assert_eq!(serial.mean_test_rate, par.mean_test_rate);
        // The caller's generator must be reusable identically afterwards.
        assert_eq!(serial_rng.clone().next_u64(), par_rng.next_u64());
    }
}

#[test]
fn amp_evaluation_is_thread_invariant() {
    let (train, test) = dataset(22);
    let weights = GdtTrainer {
        epochs: 6,
        ..Default::default()
    }
    .train(&train)
    .expect("training");
    let mean_abs = mean_abs_inputs(&train);
    let opts = AmpChipOptions {
        redundant_rows: 10,
        ..AmpChipOptions::default()
    };
    let env = HardwareEnv::with_sigma(0.8).expect("env");

    let serial = amp_evaluate_with(
        &weights,
        &mean_abs,
        &opts,
        &env,
        &test,
        5,
        &mut rng(220),
        Parallelism::Serial,
    )
    .expect("serial amp");
    for threads in THREAD_COUNTS {
        let par = amp_evaluate_with(
            &weights,
            &mean_abs,
            &opts,
            &env,
            &test,
            5,
            &mut rng(220),
            Parallelism::Fixed(threads),
        )
        .expect("parallel amp");
        assert_eq!(serial.per_draw, par.per_draw, "{threads} threads");
        assert_eq!(serial.mean_test_rate, par.mean_test_rate);
    }
}

#[test]
fn full_vortex_pipeline_is_thread_invariant() {
    let (train, test) = dataset(23);
    let env = HardwareEnv::with_sigma(0.7).expect("env");
    let cfg = |parallelism| VortexConfig {
        parallelism,
        ..VortexConfig::fast()
    };
    let serial = VortexPipeline::new(cfg(Parallelism::Serial))
        .run(&train, &test, &env, &mut rng(230))
        .expect("serial vortex");
    for threads in THREAD_COUNTS {
        let par = VortexPipeline::new(cfg(Parallelism::Fixed(threads)))
            .run(&train, &test, &env, &mut rng(230))
            .expect("parallel vortex");
        assert_eq!(serial.per_draw, par.per_draw, "{threads} threads");
        assert_eq!(serial.best_gamma, par.best_gamma);
        assert_eq!(serial.weights, par.weights);
        assert_eq!(serial.rates, par.rates);
    }
}

// ---------------------------------------------------------------------------
// Observability: metrics keep recording, results do not move.
// ---------------------------------------------------------------------------

#[test]
fn metrics_collection_does_not_perturb_results_across_env_thread_counts() {
    // The obs layer watches the executor from the outside — atomics and
    // wall-clock timers only — so flipping `VORTEX_MC_THREADS` between 1
    // and 8 must leave Monte-Carlo output bit-identical while the
    // instrumentation stays live. (As with `env_var_controls_auto_resolution`,
    // mutating the variable is harmless to concurrent tests precisely
    // because results never depend on the pool size.)
    let f = |r: &mut Xoshiro256PlusPlus| r.next_f64();
    let mut runs = Vec::new();
    for threads in ["1", "8"] {
        std::env::set_var(THREADS_ENV_VAR, threads);
        runs.push(montecarlo::run_with(515, 64, Parallelism::Auto, f).values);
    }
    std::env::remove_var(THREADS_ENV_VAR);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&runs[0]),
        bits(&runs[1]),
        "instrumented runs diverged between 1 and 8 threads"
    );

    // And the metrics were actively recording during those runs, not
    // compiled out or short-circuited.
    let snap = vortex_obs::snapshot();
    assert!(snap.counter("montecarlo.trials").unwrap_or(0) >= 128);
    assert!(
        snap.histogram("executor.run_seconds")
            .map_or(0, |h| h.count)
            >= 2
    );
}

// ---------------------------------------------------------------------------
// End to end: Fig. 2 at bench scale — identical statistics, faster clock.
// ---------------------------------------------------------------------------

#[test]
fn fig2_statistics_are_identical_on_any_pool_and_parallel_is_not_slower() {
    let scale = Scale {
        column_runs: 240,
        ..Scale::bench()
    };
    let timed = |parallelism| {
        let start = Instant::now();
        let result = fig2::run_with(&scale, parallelism);
        (result, start.elapsed())
    };

    let (serial, serial_elapsed) = timed(Parallelism::Serial);
    let mut parallel_elapsed = Duration::MAX;
    for threads in THREAD_COUNTS {
        let (par, elapsed) = timed(Parallelism::Fixed(threads));
        assert_eq!(
            serial, par,
            "Fig. 2 statistics changed at {threads} threads"
        );
        if threads > 1 {
            parallel_elapsed = parallel_elapsed.min(elapsed);
        }
    }

    // Timing is soft-gated: only meaningful with real cores and a run long
    // enough to swamp thread start-up. A loaded CI box still gets slack.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 && serial_elapsed > Duration::from_millis(200) {
        assert!(
            parallel_elapsed < serial_elapsed.mul_f64(1.1),
            "parallel Fig. 2 ({parallel_elapsed:?}) should not be slower than serial ({serial_elapsed:?})"
        );
    }
}

// ---------------------------------------------------------------------------
// The shared worker pool: one pool, many clients, zero drift.
// ---------------------------------------------------------------------------

mod shared_pool {
    use super::*;
    use std::sync::Arc;

    use vortex_device::DeviceParams;
    use vortex_linalg::Matrix;
    use vortex_nn::executor::run_trials_on;
    use vortex_nn::pool::WorkerPool;
    use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
    use vortex_serve::{Scheduler, SchedulerConfig};
    use vortex_xbar::crossbar::CrossbarConfig;
    use vortex_xbar::pair::{DifferentialPair, WeightMapping};

    const ROWS: usize = 6;
    const COLS: usize = 3;

    fn compiled() -> Arc<CompiledModel> {
        let device = DeviceParams::default();
        let config = CrossbarConfig {
            r_wire: 8.0,
            ..CrossbarConfig::ideal(ROWS, COLS, device)
        };
        let mapping = WeightMapping::new(&device, 1.0).unwrap();
        let mut rng = rng(42);
        let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
        let w = Matrix::from_fn(ROWS, COLS, |i, j| {
            ((i * COLS + j) as f64 * 0.53).sin() * 0.8
        });
        pair.program_open_loop(&w, None, &mut rng).unwrap();
        let assignment: Vec<usize> = (0..ROWS).collect();
        let calibration = vec![0.5; ROWS];
        Arc::new(
            CompiledModel::compile(
                &pair.freeze(),
                &assignment,
                &ReadOptions::new(Fidelity::Calibrated),
                Some(&calibration),
            )
            .unwrap(),
        )
    }

    fn request(k: usize) -> Vec<f64> {
        (0..ROWS)
            .map(|i| ((i * 7 + k) as f64 * 0.37).sin().abs())
            .collect()
    }

    /// One long-lived pool reused across many `run_trials_on` calls must
    /// behave exactly like a fresh executor every time, at every pool
    /// size — determinism cannot depend on pool warm-up or job history.
    #[test]
    fn reused_pool_is_bit_identical_across_runs_and_sizes() {
        let f = |k: usize, r: &mut Xoshiro256PlusPlus| (k as f64).mul_add(1e-9, r.next_f64());
        let baseline: Vec<Vec<f64>> = [13usize, 1, 37, 8]
            .iter()
            .map(|&trials| run_trials(&mut rng(7), trials, Parallelism::Serial, f))
            .collect();
        for size in [1usize, 2, 8] {
            let pool = WorkerPool::new(size);
            // Several rounds over the same pool: results never drift.
            for _round in 0..3 {
                for (&trials, want) in [13usize, 1, 37, 8].iter().zip(&baseline) {
                    let got =
                        run_trials_on(&pool, &mut rng(7), trials, Parallelism::Fixed(size), f);
                    assert_eq!(want.len(), got.len());
                    for (a, b) in want.iter().zip(&got) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "pool of {size} drifted on {trials} trials"
                        );
                    }
                }
            }
        }
    }

    /// The tentpole contract: the Monte-Carlo executor and the serve
    /// scheduler share one pool, interleaved, and neither perturbs the
    /// other — executor output stays bit-exact, scheduler predictions
    /// stay equal to the model's own `infer`.
    #[test]
    fn interleaved_executor_and_serve_clients_share_one_pool() {
        let f = |_: usize, r: &mut Xoshiro256PlusPlus| r.next_u64();
        let want_mc = run_trials(&mut rng(19), 29, Parallelism::Serial, f);
        let model = compiled();
        let want_labels: Vec<u8> = (0..12).map(|k| model.infer(&request(k)).unwrap()).collect();

        for size in [1usize, 2, 8] {
            let pool = Arc::new(WorkerPool::new(size));
            let scheduler = Scheduler::on_pool(
                Arc::clone(&pool),
                Arc::clone(&model),
                None,
                SchedulerConfig::deterministic(),
                None,
            )
            .unwrap();
            for round in 0..3 {
                // Executor fan-out on the shared pool…
                let got = run_trials_on(&pool, &mut rng(19), 29, Parallelism::Fixed(size), f);
                assert_eq!(want_mc, got, "MC drifted at pool size {size} round {round}");
                // …interleaved with serve traffic on the same pool.
                for (k, want) in want_labels.iter().enumerate() {
                    let got = scheduler.submit_wait(request(k)).unwrap();
                    assert_eq!(got.class, *want, "serve prediction drifted");
                }
            }
            scheduler.shutdown();
        }
    }

    /// `VORTEX_MC_THREADS=1` must force the executor serial even when a
    /// big shared pool is available — Auto resolves from the env var,
    /// not from the pool it happens to run on.
    #[test]
    fn mc_threads_env_is_honored_on_a_shared_pool() {
        // Mutating the var is harmless to concurrent tests for the usual
        // reason: results never depend on the resolved thread count.
        let f = |_: usize, r: &mut Xoshiro256PlusPlus| r.next_f64();
        let want = run_trials(&mut rng(31), 23, Parallelism::Serial, f);
        let pool = WorkerPool::new(8);
        std::env::set_var(THREADS_ENV_VAR, "1");
        assert_eq!(Parallelism::Auto.resolve(), 1);
        let got = run_trials_on(&pool, &mut rng(31), 23, Parallelism::Auto, f);
        std::env::remove_var(THREADS_ENV_VAR);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&want), bits(&got));
    }
}

// ---------------------------------------------------------------------------
// Self-healing chaos: the whole fault-and-recovery loop is a pure value.
// ---------------------------------------------------------------------------

#[test]
fn lifetime_policy_race_is_deterministic_in_virtual_time() {
    use vortex_bench::experiments::lifetime;

    // The whole two-day virtual timeline — wear, diurnal temperature,
    // Arrhenius-accelerated drift, three policies racing over the same
    // seeded arrival trace — is a pure function of the scale. Like the
    // chaos loop below, this also runs in CI's `VORTEX_MC_THREADS=1`
    // re-invocation, so nothing here may depend on the pool size.
    let baseline = lifetime::run(&Scale::bench());
    assert_eq!(
        baseline,
        lifetime::run(&Scale::bench()),
        "lifetime race diverged between identical runs"
    );
    assert_eq!(
        baseline.to_json(),
        lifetime::run(&Scale::bench()).to_json(),
        "lifetime JSON payload is not byte-stable"
    );
    // The gated invariants hold at bench scale too, not just --quick.
    assert_eq!(baseline.recompile_budget_delta(), 0);
    assert!(
        baseline.predictive_minus_periodic_accuracy_hours() < 0.0,
        "drift-predictive must strictly beat periodic at equal budget"
    );
}

#[test]
fn chaos_self_healing_loop_is_deterministic_and_loses_nothing() {
    use vortex_bench::experiments::chaos;

    // Two full runs — compile, drift, injected panics, requeue, canary
    // breach, fixed-seed recompile, hot swap, second drain — must agree
    // field for field. This test also runs in CI's `VORTEX_MC_THREADS=1`
    // re-invocation, so the counts and accuracies must not depend on the
    // executor's thread count either.
    let baseline = chaos::run(&Scale::bench());
    assert_eq!(
        baseline,
        chaos::run(&Scale::bench()),
        "chaos loop diverged between identical runs"
    );
    assert_eq!(baseline.lost_requests, 0, "no accepted request may vanish");
    assert!(baseline.swapped, "the canary breach must trigger a swap");
    assert_eq!(
        baseline.recovered_accuracy_delta_pp(),
        0.0,
        "a fixed-seed recompile must restore accuracy bit-exactly"
    );
}
