//! Cross-crate integration tests: the full train → fabricate → pre-test →
//! map → program → read pipelines, exercised end to end.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::cld::CldTrainer;
use vortex_core::old::OldPipeline;
use vortex_core::pipeline::{evaluate_hardware, HardwareEnv};
use vortex_core::vortex::{amp_evaluate, AmpChipOptions, VortexConfig, VortexPipeline};
use vortex_device::defects::DefectModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;

fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

fn dataset(seed: u64) -> (Dataset, Dataset) {
    let data = SynthDigits::generate(&DatasetConfig::tiny(), seed).expect("dataset");
    let split = stratified_split(&data, 200, 100, &mut rng(seed)).expect("split");
    (split.train, split.test)
}

#[test]
fn vortex_beats_old_and_cld_at_high_variation() {
    let (train, test) = dataset(1);
    let env = HardwareEnv::with_sigma(1.0).expect("env");
    let mut r = rng(10);

    let old = OldPipeline::fast()
        .run(&train, &test, &env, &mut r)
        .expect("old");
    let cld = CldTrainer::fast()
        .run(&train, &test, &env, &mut r)
        .expect("cld");
    let vortex = VortexPipeline::new(VortexConfig {
        redundant_rows: 20,
        ..VortexConfig::fast()
    })
    .run(&train, &test, &env, &mut r)
    .expect("vortex");

    // The paper's headline ordering at σ = 0.8+: Vortex ≥ both baselines.
    assert!(
        vortex.rates.test_rate >= old.rates.test_rate - 0.02,
        "Vortex {} vs OLD {}",
        vortex.rates.test_rate,
        old.rates.test_rate
    );
    assert!(
        vortex.rates.test_rate >= cld.rates.test_rate - 0.10,
        "Vortex {} vs CLD {}",
        vortex.rates.test_rate,
        cld.rates.test_rate
    );
}

#[test]
fn amp_mapping_recovers_accuracy_on_defective_chips() {
    let (train, test) = dataset(2);
    let weights = GdtTrainer {
        epochs: 10,
        ..Default::default()
    }
    .train(&train)
    .expect("training");
    let mean_abs = mean_abs_inputs(&train);

    let mut env = HardwareEnv::with_sigma(0.4).expect("env");
    env.defects = DefectModel::new(0.02, 0.04).expect("defects");

    let mut r = rng(20);
    let no_amp = evaluate_hardware(
        &weights,
        &RowMapping::identity(weights.rows()),
        &env,
        &test,
        3,
        &mut r,
    )
    .expect("identity eval");
    let with_amp = amp_evaluate(
        &weights,
        &mean_abs,
        &AmpChipOptions {
            redundant_rows: 30,
            ..AmpChipOptions::default()
        },
        &env,
        &test,
        3,
        &mut r,
    )
    .expect("amp eval");
    assert!(
        with_amp.mean_test_rate > no_amp.mean_test_rate,
        "AMP+redundancy {} must beat blind mapping {} on a defective chip",
        with_amp.mean_test_rate,
        no_amp.mean_test_rate
    );
}

#[test]
fn programming_irdrop_compensation_matters_end_to_end() {
    let (train, test) = dataset(3);
    let weights = GdtTrainer {
        epochs: 10,
        ..Default::default()
    }
    .train(&train)
    .expect("training");
    let mapping = RowMapping::identity(weights.rows());

    let uncompensated = HardwareEnv::ideal().with_ir_drop(5.0);
    let mut compensated = uncompensated;
    compensated.compensate_program_irdrop = true;

    let mut r = rng(30);
    let bad = evaluate_hardware(&weights, &mapping, &uncompensated, &test, 2, &mut r)
        .expect("uncompensated");
    let good =
        evaluate_hardware(&weights, &mapping, &compensated, &test, 2, &mut r).expect("compensated");
    assert!(
        good.mean_test_rate > bad.mean_test_rate + 0.05,
        "compensated {} vs uncompensated {}",
        good.mean_test_rate,
        bad.mean_test_rate
    );
}

#[test]
fn self_tuned_gamma_is_interior_under_variation() {
    let (train, test) = dataset(4);
    let env = HardwareEnv::with_sigma(0.9).expect("env");
    let out = VortexPipeline::new(VortexConfig::fast())
        .run(&train, &test, &env, &mut rng(40))
        .expect("vortex");
    // At σ = 0.9 the tuner should find some protection useful (γ > 0 on
    // the coarse grid) — the defining behaviour of the self-tuning loop.
    assert!(
        out.best_gamma >= 0.0 && out.best_gamma <= 1.0,
        "gamma {}",
        out.best_gamma
    );
    assert!(!out.tuning_curve.is_empty());
    // Training rate must exceed the hardware test rate (variation costs).
    assert!(out.rates.training_rate >= out.rates.test_rate - 0.05);
}

#[test]
fn whole_pipeline_is_reproducible() {
    let (train, test) = dataset(5);
    let env = HardwareEnv::with_sigma(0.6).expect("env");
    let pipeline = VortexPipeline::new(VortexConfig::fast());
    let a = pipeline
        .run(&train, &test, &env, &mut rng(50))
        .expect("run a");
    let b = pipeline
        .run(&train, &test, &env, &mut rng(50))
        .expect("run b");
    assert_eq!(a.per_draw, b.per_draw);
    assert_eq!(a.best_gamma, b.best_gamma);
    assert_eq!(a.weights, b.weights);
}

#[test]
fn retune_after_amp_runs_and_stays_sane() {
    let (train, test) = dataset(6);
    let env = HardwareEnv::with_sigma(0.8).expect("env");
    let out = VortexPipeline::new(VortexConfig {
        retune_after_amp: true,
        redundant_rows: 10,
        mc_draws: 1,
        ..VortexConfig::fast()
    })
    .run(&train, &test, &env, &mut rng(60))
    .expect("vortex with retune");
    assert!(
        out.rates.test_rate > 0.2,
        "test rate {}",
        out.rates.test_rate
    );
    // AMP should report a reduced effective σ relative to the raw 0.8.
    assert!(
        out.effective_sigma_mean < 0.8,
        "effective σ {} should be below raw 0.8",
        out.effective_sigma_mean
    );
}

#[test]
fn pretest_compensation_extension_beats_plain_amp() {
    // Extension beyond the paper: using the pre-test multipliers to
    // correct each device's target (not just to remap rows) should
    // recover most of the open-loop variation loss.
    let (train, test) = dataset(7);
    let weights = GdtTrainer {
        epochs: 10,
        ..Default::default()
    }
    .train(&train)
    .expect("training");
    let mean_abs = mean_abs_inputs(&train);
    let env = HardwareEnv::with_sigma(0.8).expect("env");
    let mut r = rng(70);

    let plain = amp_evaluate(
        &weights,
        &mean_abs,
        &AmpChipOptions::default(),
        &env,
        &test,
        3,
        &mut r,
    )
    .expect("plain amp");
    let compensated = amp_evaluate(
        &weights,
        &mean_abs,
        &AmpChipOptions {
            pretest_compensation: true,
            pretest_bits: 8,
            ..AmpChipOptions::default()
        },
        &env,
        &test,
        3,
        &mut r,
    )
    .expect("compensated amp");
    assert!(
        compensated.mean_test_rate >= plain.mean_test_rate - 0.02,
        "compensated {} vs plain {}",
        compensated.mean_test_rate,
        plain.mean_test_rate
    );
}
