//! Shape tests for the paper experiments: every figure/table module must
//! reproduce the paper's *qualitative* result at reduced scale.

use vortex_bench::experiments::{fig2, fig3, fig4, fig7, fig8, fig9, table1};
use vortex_bench::Scale;

fn scale() -> Scale {
    Scale::bench()
}

#[test]
fn fig2_old_grows_cld_flat() {
    let r = fig2::run(&scale());
    let first = r.points.first().unwrap();
    let last = r.points.last().unwrap();
    assert!(last.old_discrepancy > first.old_discrepancy * 2.0);
    assert!(last.cld_discrepancy < 0.05);
    // OLD's mean discrepancy scales roughly like σ/√n: sanity bracket.
    assert!(last.old_discrepancy > 0.02 && last.old_discrepancy < 1.0);
}

#[test]
fn fig3_skew_grows_and_crosses_two() {
    let r = fig3::run(&scale());
    let skews: Vec<f64> = r.points.iter().map(|p| p.update_rate_skew).collect();
    assert!(
        skews.windows(2).all(|w| w[1] >= w[0] * 0.9),
        "roughly monotone"
    );
    assert!(
        *skews.last().unwrap() > 2.0,
        "largest mesh must show >2 skew: {skews:?}"
    );
}

#[test]
fn fig4_variation_gap_exists_at_gamma_zero() {
    let r = fig4::run_with_sigma(&scale(), 0.8);
    let at0 = r.points.first().unwrap();
    assert!(
        at0.test_rate_without_variation >= at0.test_rate_with_variation - 0.02,
        "variation must not help an unprotected net: w/o {} w/ {}",
        at0.test_rate_without_variation,
        at0.test_rate_with_variation
    );
}

#[test]
fn fig7_amp_curve_dominates_on_average() {
    let r = fig7::run_with_sigma(&scale(), 0.8);
    let before: f64 = r.points.iter().map(|p| p.test_rate_before_amp).sum();
    let after: f64 = r.points.iter().map(|p| p.test_rate_after_amp).sum();
    assert!(
        after >= before - 0.05 * r.points.len() as f64,
        "after-AMP mean must not lose: {after} vs {before}"
    );
}

#[test]
fn fig8_low_resolution_hurts_or_saturates() {
    let r = fig8::run(&scale());
    for &sigma in &r.sigmas {
        let lo = r.at(4, sigma).unwrap();
        let hi = r.at(10, sigma).unwrap();
        assert!(
            hi >= lo - 0.05,
            "σ={sigma}: more resolution should not hurt ({lo} → {hi})"
        );
    }
}

#[test]
fn fig9_vortex_leads_baselines() {
    let r = fig9::run_with_sigma(&scale(), 0.8);
    let p0 = &r.points[0];
    assert!(
        p0.vortex >= r.old_baseline - 0.03,
        "Vortex {} vs OLD {}",
        p0.vortex,
        r.old_baseline
    );
    // Components alone should not beat the combination by much.
    assert!(
        p0.vortex >= p0.amp_only - 0.08,
        "Vortex {} vs AMP-only {} (tuned gamma {})",
        p0.vortex,
        p0.amp_only,
        r.tuned_gamma
    );
}

#[test]
fn table1_cld_collapse_is_size_dependent() {
    // Strong wires exaggerate the effect at bench scale.
    let r = table1::run_with(&scale(), 10.0, 0.6);
    // The paper's Table 1 shape: Vortex holds up on the LARGE crossbar
    // (compensated open-loop programming sidesteps the skewed update
    // rates that cripple CLD there) but may lose on the smallest one,
    // where CLD's closed loop shines and the penalty costs Vortex fit.
    let big = &r.columns[0];
    assert!(
        big.vortex_with_irdrop.test_rate >= big.cld_with_irdrop.test_rate - 0.10,
        "{} rows: Vortex {} vs CLD w/ IR-drop {}",
        big.rows,
        big.vortex_with_irdrop.test_rate,
        big.cld_with_irdrop.test_rate
    );
    // The larger crossbar suffers more from IR-drop in CLD (relative to
    // its own no-IR-drop ceiling).
    if r.columns.len() >= 2 {
        let big = &r.columns[0];
        let small = &r.columns[r.columns.len() - 1];
        let big_loss = big.cld_without_irdrop.test_rate - big.cld_with_irdrop.test_rate;
        let small_loss = small.cld_without_irdrop.test_rate - small.cld_with_irdrop.test_rate;
        assert!(
            big_loss >= small_loss - 0.10,
            "larger crossbar should lose at least as much: big {big_loss} small {small_loss}"
        );
    }
}
