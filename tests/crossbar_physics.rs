//! Cross-crate physics validation: the circuit, device and programming
//! models must agree with each other and with first principles.

use vortex_device::pulse::precalculate_pulse;
use vortex_device::{DeviceParams, Memristor, VariationModel};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_xbar::circuit::NodalAnalysis;
use vortex_xbar::crossbar::{Crossbar, CrossbarConfig};
use vortex_xbar::ideal;
use vortex_xbar::irdrop::{ComputeAttenuationMap, ProgramVoltageMap};
use vortex_xbar::pretest::{pretest, PretestConfig};
use vortex_xbar::sensing::Adc;

fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[test]
fn mesh_solver_conserves_current() {
    // Kirchhoff: total input current == total output current.
    let m = 12;
    let n = 6;
    let na = NodalAnalysis::new(m, n, 3.0).expect("mesh");
    let g = Matrix::from_fn(m, n, |i, j| 1e-5 * (1 + (i * n + j) % 9) as f64);
    let x: Vec<f64> = (0..m).map(|i| 0.2 + 0.05 * i as f64).collect();
    let sol = na.compute(&g, &x).expect("solve");
    let out_total: f64 = sol.column_currents.iter().sum();
    // Input current per row = g_wire · (v_source − first node voltage).
    let g_wire = 1.0 / 3.0;
    let mut in_total = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        let first = sol.node_voltages[i * n];
        in_total += g_wire * (xi - first);
    }
    assert!(
        (in_total - out_total).abs() / out_total.abs() < 1e-5,
        "KCL violated: in {in_total} vs out {out_total}"
    );
}

#[test]
fn attenuation_model_validated_against_exact_mesh() {
    let m = 20;
    let n = 8;
    let na = NodalAnalysis::new(m, n, 4.0).expect("mesh");
    let mut r = rng(7);
    let g = Matrix::from_fn(m, n, |_, _| 10f64.powf(r.range_f64(-6.0, -4.0)));
    let reference: Vec<f64> = (0..m).map(|_| r.range_f64(0.2, 0.8)).collect();
    let map = ComputeAttenuationMap::calibrate(&na, &g, &reference).expect("calibrate");
    // On 20 random binary inputs the fast model stays within 15 % of the
    // exact column currents.
    for trial in 0..20 {
        let x: Vec<f64> = (0..m)
            .map(|_| if r.next_f64() < 0.5 { 1.0 } else { 0.0 })
            .collect();
        let exact = na.compute(&g, &x).expect("solve").column_currents;
        let fast = map.compute(&g, &x);
        for (j, (a, b)) in fast.iter().zip(&exact).enumerate() {
            let denom = b.abs().max(1e-9);
            assert!(
                (a - b).abs() / denom < 0.15,
                "trial {trial} col {j}: fast {a} exact {b}"
            );
        }
    }
}

#[test]
fn analytic_program_map_tracks_exact_on_mixed_states() {
    let m = 14;
    let n = 6;
    let mut r = rng(8);
    let g = Matrix::from_fn(m, n, |_, _| 10f64.powf(r.range_f64(-6.0, -4.0)));
    let na = NodalAnalysis::new(m, n, 2.5).expect("mesh");
    let v = DeviceParams::default().v_program();
    let exact = ProgramVoltageMap::from_exact(&na, &g, v).expect("exact map");
    let approx = ProgramVoltageMap::analytic(&g, 2.5, v).expect("analytic map");
    let mut worst = 0.0_f64;
    for i in 0..m {
        for j in 0..n {
            worst = worst.max((exact.factor(i, j) - approx.factor(i, j)).abs());
        }
    }
    assert!(worst < 0.12, "analytic vs exact worst error {worst}");
}

#[test]
fn open_loop_error_statistics_match_the_variation_model() {
    // Program a large crossbar open-loop and verify the realized/target
    // conductance log-ratios reproduce the lognormal σ.
    let sigma = 0.45;
    let config = CrossbarConfig {
        rows: 40,
        cols: 25,
        device: DeviceParams::default(),
        r_wire: 0.0,
        variation: VariationModel::parametric(sigma).expect("variation"),
        defects: vortex_device::defects::DefectModel::none(),
    };
    let mut r = rng(9);
    let mut xbar = Crossbar::new(config, &mut r).expect("fabricate");
    let targets = Matrix::filled(40, 25, 3e-5);
    xbar.program_open_loop(&targets, None, &mut r)
        .expect("program");
    let g = xbar.conductances();
    let logs: Vec<f64> = g.as_slice().iter().map(|&gi| (gi / 3e-5).ln()).collect();
    let s = vortex_linalg::stats::std_dev(&logs);
    let mean = vortex_linalg::stats::mean(&logs);
    assert!(mean.abs() < 0.05, "log-ratio mean {mean}");
    assert!((s - sigma).abs() < 0.05, "log-ratio std {s} vs σ {sigma}");
}

#[test]
fn pretest_estimates_feed_correct_crossbar_state() {
    // After pre-testing, the crossbar must be back at HRS and the
    // estimates must correlate strongly with the true thetas.
    let config = CrossbarConfig {
        rows: 16,
        cols: 10,
        device: DeviceParams::default(),
        r_wire: 2.5,
        variation: VariationModel::parametric(0.6).expect("variation"),
        defects: vortex_device::defects::DefectModel::none(),
    };
    let mut r = rng(10);
    let mut xbar = Crossbar::new(config, &mut r).expect("fabricate");
    let truth = xbar.thetas();
    let cfg = PretestConfig::with_adc(Adc::new(10, 150e-6).expect("adc")).expect("config");
    let report = pretest(&mut xbar, &cfg, &mut r).expect("pretest");
    // Correlation between θ̂ and θ.
    let a = report.theta_hat.as_slice();
    let b = truth.as_slice();
    let ma = vortex_linalg::stats::mean(a);
    let mb = vortex_linalg::stats::mean(b);
    let cov: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>();
    let corr = cov
        / (vortex_linalg::stats::std_dev(a) * vortex_linalg::stats::std_dev(b) * a.len() as f64);
    assert!(corr > 0.95, "pre-test correlation {corr}");
    for i in 0..16 {
        for j in 0..10 {
            assert_eq!(xbar.device(i, j).state(), 0.0, "device ({i},{j}) not reset");
        }
    }
}

#[test]
fn device_pulse_roundtrip_through_crossbar_read() {
    // Program a single device to several targets and confirm the ideal
    // crossbar read sees exactly the programmed conductance.
    let params = DeviceParams::default();
    for &target in &[20e3, 50e3, 200e3, 800e3] {
        let mut dev = Memristor::fresh(params);
        let pulse = precalculate_pulse(&params, params.r_off(), target).expect("pulse");
        dev.apply_pulse(&pulse);
        let g = Matrix::filled(1, 1, dev.conductance());
        let y = ideal::compute(&g, &[1.0]);
        assert!(
            (y[0] - 1.0 / target).abs() / (1.0 / target) < 2e-2,
            "target {target}: read {}",
            y[0]
        );
    }
}

#[test]
fn half_select_scheme_preserves_neighbours() {
    // Programming one device must leave the rest of an ideal crossbar
    // essentially untouched even when disturb is modeled.
    use vortex_xbar::program::{program_with_protocol, ProgramOptions};
    let mut xbar = Crossbar::ideal(8, 8, DeviceParams::default());
    let mut r = rng(11);
    let targets = Matrix::from_fn(8, 8, |i, j| 2e-6 + 1.2e-5 * ((i * 8 + j) % 8) as f64);
    let opts = ProgramOptions {
        compensation: None,
        half_select_disturb: true,
    };
    program_with_protocol(&mut xbar, &targets, None, &opts, &mut r).expect("program");
    // Disturb is judged against the device conductance *range*: cells
    // programmed near HRS have tiny absolute conductance, so a per-cell
    // relative metric would be dominated by numerically irrelevant drift.
    let g = xbar.conductances();
    let range = DeviceParams::default().g_on() - DeviceParams::default().g_off();
    let mut worst = 0.0_f64;
    for i in 0..8 {
        for j in 0..8 {
            worst = worst.max((g[(i, j)] - targets[(i, j)]).abs() / range);
        }
    }
    assert!(worst < 0.05, "half-select disturb too strong: {worst}");
}

#[test]
fn analytic_program_map_tracks_exact_on_large_arrays() {
    // The transmission-line analytic model must stay close to the exact
    // mesh solve even at paper scale. Sampling cells keeps this fast.
    let device = DeviceParams::default();
    let v = device.v_program();
    for &(m, gval) in &[(128usize, 1e-4f64), (256, 5e-6)] {
        let g = Matrix::filled(m, 10, gval);
        let analytic = ProgramVoltageMap::analytic(&g, 2.5, v).expect("analytic");
        let na = NodalAnalysis::new(m, 10, 2.5).expect("mesh");
        for &(p, q) in &[(0usize, 9usize), (m / 2, 5), (m - 1, 0)] {
            let exact = na.program_bias(&g, (p, q), v).expect("solve")[(p, q)] / v;
            let approx = analytic.factor(p, q);
            assert!(
                (exact - approx).abs() < 0.08,
                "{m} rows g={gval}: cell ({p},{q}) exact {exact:.4} vs analytic {approx:.4}"
            );
        }
    }
}

#[test]
fn amp_mapping_gain_is_robust_across_variation_models() {
    // §4.1.3: the proposed techniques "are not restricted to any
    // particular variation models". Empirically the greedy-vs-identity
    // mapping gain with redundancy is essentially the same for an i.i.d.
    // field and a row-dominated correlated field of equal marginal
    // spread — AMP keeps working either way.
    use vortex_core::amp;
    use vortex_core::amp::greedy::{greedy_map, RowMapping};
    use vortex_core::amp::{sensitivity, swv};
    use vortex_device::variation::CorrelatedVariationModel;

    let rows = 40;
    let physical = 55; // 15 redundant rows
    let cols = 10;
    let mut r = rng(21);
    let weights = Matrix::from_fn(rows, cols, |_, _| {
        vortex_linalg::distributions::standard_normal(&mut r) * 0.5
    });
    let x_bar = vec![0.5; rows];
    let sens = sensitivity::row_sensitivity(&weights, &x_bar);

    let gain = |field_pos: &Matrix, field_neg: &Matrix| -> f64 {
        let mp = field_pos.map(f64::exp);
        let mn = field_neg.map(f64::exp);
        let swv_m = swv::swv_matrix_pair(&weights, &mp, &mn).expect("swv");
        let greedy = greedy_map(&sens, &swv_m).expect("greedy");
        let identity = RowMapping::identity_into(rows, physical);
        amp::effective_sigma(&weights, &mp, &mn, &identity)
            - amp::effective_sigma(&weights, &mp, &mn, &greedy)
    };

    // Same marginal sigma = 0.8: i.i.d. vs row-dominated.
    let iid = CorrelatedVariationModel::new(0.8, 0.0, 0.0).expect("model");
    let row_corr = CorrelatedVariationModel::new(0.2, 0.7746, 0.0).expect("model");
    assert!((iid.total_sigma() - row_corr.total_sigma()).abs() < 1e-3);

    let mut gain_iid = 0.0;
    let mut gain_row = 0.0;
    let trials = 10;
    for k in 0..trials {
        let mut rr = rng(100 + k);
        gain_iid += gain(
            &iid.sample_theta_matrix(physical, cols, &mut rr),
            &iid.sample_theta_matrix(physical, cols, &mut rr),
        );
        let mut rr = rng(200 + k);
        gain_row += gain(
            &row_corr.sample_theta_matrix(physical, cols, &mut rr),
            &row_corr.sample_theta_matrix(physical, cols, &mut rr),
        );
    }
    let mean_iid = gain_iid / trials as f64;
    let mean_row = gain_row / trials as f64;
    assert!(
        mean_iid > 0.05,
        "i.i.d. mapping gain {mean_iid} should be real"
    );
    assert!(
        mean_row > 0.05,
        "row-correlated mapping gain {mean_row} should be real"
    );
    assert!(
        (mean_row - mean_iid).abs() < 0.15,
        "gains should be comparable: row {mean_row} vs iid {mean_iid}"
    );
}

#[test]
fn correlated_field_feeds_crossbar_fabrication() {
    use vortex_device::variation::CorrelatedVariationModel;
    let config = CrossbarConfig {
        rows: 12,
        cols: 8,
        device: DeviceParams::default(),
        r_wire: 0.0,
        variation: VariationModel::none(),
        defects: vortex_device::defects::DefectModel::none(),
    };
    let model = CorrelatedVariationModel::new(0.1, 0.6, 0.0).expect("model");
    let mut r = rng(31);
    let field = model.sample_theta_matrix(12, 8, &mut r);
    let xbar = Crossbar::with_theta_field(config, &field, &mut r).expect("fabricate");
    assert_eq!(xbar.thetas(), field);
    // Shape mismatch rejected.
    let bad = Matrix::zeros(5, 8);
    assert!(Crossbar::with_theta_field(config, &bad, &mut r).is_err());
}
